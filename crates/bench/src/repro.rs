//! The `repro_all` orchestrator as a library: runs every experiment
//! and renders the full EXPERIMENTS summary into one string.
//!
//! Living in the library (rather than inline in the binary) lets the
//! determinism tests call it directly: the golden test pins the
//! `--quick` report byte-for-byte, and the CI smoke compares `--jobs 1`
//! against `--jobs N` output. The full-scale report is exactly what the
//! binary has always printed.

use std::fmt::Write as _;

use crate::{
    experiments::{
        ablation_opts,
        baseline_compare,
        component_costs,
        dynamic_delta_with,
        fig7,
        fig8,
        invalidation_scaling,
        local_pingpong,
        migration_hotspot,
        msg_accounting,
        remap_model,
        table3,
        test_and_set,
        thrash_system,
    },
    table::format_table,
};

/// Horizons and sweep points for one `repro_all` run.
#[derive(Clone, Debug)]
pub struct ReproParams {
    /// Figure 7 Δ sweep (ticks).
    pub fig7_deltas: Vec<u32>,
    /// Figure 7 horizon per point (simulated seconds).
    pub fig7_seconds: u64,
    /// E4 local ping-pong horizon (simulated seconds).
    pub pingpong_seconds: u64,
    /// E6 message-accounting horizon (simulated seconds).
    pub msg_seconds: u64,
    /// Figure 8 Δ sweep (ticks).
    pub fig8_deltas: Vec<u32>,
    /// Figure 8 per-process decrement count.
    pub fig8_task: u32,
    /// E9 test&set Δ sweep (ticks).
    pub tas_deltas: Vec<u32>,
    /// E9 horizon per point (simulated seconds).
    pub tas_seconds: u64,
    /// E10 thrash Δ sweep (ticks).
    pub thrash_deltas: Vec<u32>,
    /// E10 horizon per point (simulated seconds).
    pub thrash_seconds: u64,
    /// A1–A3 ablation horizon (simulated seconds).
    pub ablation_seconds: u64,
    /// A5 duel size (decrements per process).
    pub dyn_task: u32,
    /// A5 ping-pong horizon (simulated seconds).
    pub dyn_seconds: u64,
    /// A4 reader counts.
    pub inv_readers: Vec<usize>,
    /// M1 hot-spot size (periodic writes by the far partner).
    pub migration_task: u32,
}

impl ReproParams {
    /// The full-scale run recorded in `EXPERIMENTS.md` — the horizons
    /// the paper's figures use.
    pub fn full() -> Self {
        Self {
            fig7_deltas: vec![0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 14],
            fig7_seconds: 60,
            pingpong_seconds: 20,
            msg_seconds: 60,
            fig8_deltas: vec![
                0, 2, 6, 12, 30, 60, 120, 240, 360, 480, 600, 660, 780, 900, 1200,
            ],
            fig8_task: 560_000,
            tas_deltas: vec![0, 2, 6, 12],
            tas_seconds: 30,
            thrash_deltas: vec![0, 2, 6, 12, 30, 60],
            thrash_seconds: 40,
            ablation_seconds: 40,
            dyn_task: 100_000,
            dyn_seconds: 30,
            inv_readers: vec![1, 2, 4, 8, 16, 32],
            migration_task: 600,
        }
    }

    /// Short horizons for smoke tests and CI: same experiments, seconds
    /// of simulated time instead of minutes. The numbers are not the
    /// paper's — only determinism matters at this scale.
    pub fn quick() -> Self {
        Self {
            fig7_deltas: vec![0, 2, 6],
            fig7_seconds: 2,
            pingpong_seconds: 2,
            msg_seconds: 2,
            fig8_deltas: vec![0, 6, 60],
            fig8_task: 20_000,
            tas_deltas: vec![0, 6],
            tas_seconds: 2,
            thrash_deltas: vec![0, 6],
            thrash_seconds: 2,
            ablation_seconds: 2,
            dyn_task: 5_000,
            dyn_seconds: 2,
            inv_readers: vec![1, 4],
            migration_task: 120,
        }
    }
}

/// Runs every experiment at the given horizons and renders the summary.
///
/// The output for [`ReproParams::full`] is byte-identical to what the
/// `repro_all` binary printed before the report moved into the library.
pub fn repro_all_report(p: &ReproParams) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Mirage reproduction — all experiments\n");

    let _ = writeln!(out, "## E1 — component cost anchors (§7.1, §6.2)\n");
    let rows: Vec<Vec<String>> = component_costs()
        .into_iter()
        .map(|r| {
            vec![r.label.into(), format!("{:.2}", r.ours_ms), format!("{:.2}", r.paper_ms)]
        })
        .collect();
    out.push_str(&format_table(&["component", "ours", "paper"], &rows));

    let _ = writeln!(out, "\n## E2 — Table 3: remote page fetch breakdown (ms)\n");
    let rows: Vec<Vec<String>> = table3()
        .into_iter()
        .map(|r| {
            vec![r.label.into(), format!("{:.2}", r.ours_ms), format!("{:.2}", r.paper_ms)]
        })
        .collect();
    out.push_str(&format_table(&["operation", "ours (ms)", "paper (ms)"], &rows));

    let _ = writeln!(out, "\n## E3 — lazy remap model (paper: 106-125 µs/page)\n");
    let rows: Vec<Vec<String>> = remap_model()
        .into_iter()
        .map(|r| {
            vec![format!("{} KiB", r.kib), r.pages.to_string(), format!("{:.0} µs", r.model_us)]
        })
        .collect();
    out.push_str(&format_table(&["segment", "pages", "remap cost"], &rows));

    let _ = writeln!(out, "\n## E4 — local ping-pong (paper: 5 vs 166 cycles/s)\n");
    let (noy, y) = local_pingpong(p.pingpong_seconds);
    let _ = writeln!(
        out,
        "busy-wait {noy:.1} cycles/s | yield() {y:.1} cycles/s | speedup x{:.1} (paper x35)",
        y / noy
    );

    let _ = writeln!(out, "\n## E5 — Figure 7: worst case, cycles/s vs Δ\n");
    let pts = fig7(&p.fig7_deltas, p.fig7_seconds);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|pt| {
            vec![
                pt.delta.to_string(),
                format!("{:.2}", pt.yield_rate),
                format!("{:.2}", pt.noyield_rate),
            ]
        })
        .collect();
    out.push_str(&format_table(&["Δ", "yield", "no-yield"], &rows));

    let _ = writeln!(out, "\n## E6 — worst-case message accounting (paper: 9 msgs, 3 large)\n");
    let m = msg_accounting(p.msg_seconds);
    let _ = writeln!(
        out,
        "{:.2} msgs/cycle, {:.2} large/cycle over {} cycles ({:.2} cycles/s)",
        m.per_cycle, m.large_per_cycle, m.cycles, m.cycles_per_sec
    );

    let _ = writeln!(
        out,
        "\n## E7 — Figure 8: conflicting read-writers vs Δ (peak paper: 115k at Δ=600)\n"
    );
    let pts = fig8(&p.fig8_deltas, p.fig8_task);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|pt| {
            vec![
                pt.delta.to_string(),
                format!("{:.0}", pt.throughput),
                format!("{:.1}s", pt.makespan),
            ]
        })
        .collect();
    out.push_str(&format_table(&["Δ (ticks)", "instr/s", "makespan"], &rows));

    let _ = writeln!(out, "\n## E9 — test&set (busy tester)\n");
    let pts = test_and_set(&p.tas_deltas, false, p.tas_seconds);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|pt| {
            vec![
                pt.delta.to_string(),
                format!("{:.2}", pt.sections_per_sec),
                format!("{:.1}", pt.msgs_per_section),
            ]
        })
        .collect();
    out.push_str(&format_table(&["Δ", "sections/s", "msgs/section"], &rows));

    let _ = writeln!(out, "\n## E10 — thrashing amelioration\n");
    let pts = thrash_system(&p.thrash_deltas, p.thrash_seconds);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|pt| {
            vec![
                pt.delta.to_string(),
                format!("{:.2}", pt.app_rate),
                format!("{:.1}", pt.bg_rate),
            ]
        })
        .collect();
    out.push_str(&format_table(&["Δ", "thrasher cycles/s", "background chunks/s"], &rows));

    let _ = writeln!(out, "\n## A1–A3 — optimization ablations (Δ=2 worst case)\n");
    let rows: Vec<Vec<String>> = ablation_opts(p.ablation_seconds)
        .into_iter()
        .map(|r| {
            vec![
                r.name.into(),
                format!("{:.2}", r.cycles_per_sec),
                format!("{:.2}", r.shorts_per_cycle),
                format!("{:.2}", r.larges_per_cycle),
            ]
        })
        .collect();
    out.push_str(&format_table(
        &["configuration", "cycles/s", "shorts/cycle", "pages/cycle"],
        &rows,
    ));

    let _ =
        writeln!(out, "\n## A5 — dynamic Δ (the paper's disabled §8.0 routine, implemented)\n");
    let rows: Vec<Vec<String>> = dynamic_delta_with(p.dyn_task, p.dyn_seconds)
        .into_iter()
        .map(|r| {
            vec![r.name, format!("{:.0}", r.fig8_throughput), format!("{:.2}", r.pingpong_rate)]
        })
        .collect();
    out.push_str(&format_table(
        &["policy", "fig8 duel (instr/s)", "worst case (cycles/s)"],
        &rows,
    ));

    let _ = writeln!(out, "\n## A4 — invalidation scaling\n");
    let pts = invalidation_scaling(&p.inv_readers);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|pt| {
            vec![
                pt.readers.to_string(),
                format!("{:.1}", pt.sequential_ms),
                format!("{:.1}", pt.multicast_ms),
            ]
        })
        .collect();
    out.push_str(&format_table(&["readers", "sequential (ms)", "multicast (ms)"], &rows));

    let _ = writeln!(out, "\n## B1 — baseline comparison\n");
    let rows: Vec<Vec<String>> = baseline_compare()
        .into_iter()
        .map(|r| {
            vec![
                r.trace.into(),
                r.protocol.into(),
                r.report.faults.to_string(),
                r.report.shorts.to_string(),
                r.report.larges.to_string(),
                format!("{:.0}", r.report.wire_time.as_millis_f64()),
            ]
        })
        .collect();
    out.push_str(&format_table(
        &["trace", "protocol", "faults", "shorts", "pages", "wire ms"],
        &rows,
    ));

    let _ = writeln!(out, "\n## M1 — library placement on a hot-spot workload\n");
    let rows: Vec<Vec<String>> = migration_hotspot(p.migration_task)
        .into_iter()
        .map(|r| {
            vec![
                r.policy.into(),
                r.hot_remote_faults.to_string(),
                r.remote_faults.to_string(),
                r.local_faults.to_string(),
                format!("{:.0}", r.throughput),
                format!("site{}", r.final_library),
            ]
        })
        .collect();
    out.push_str(&format_table(
        &["policy", "hot remote faults", "remote faults", "local faults", "instr/s", "library"],
        &rows,
    ));
    out
}
