//! Open-loop fuzz sweep: seeded arrival schedules (Poisson,
//! deterministic, MMPP per station) injected under classic-profile
//! fault storms, with the structural, write-visibility, record-
//! lifecycle, causal-trace, and timestamp oracles all asserted.
//!
//! Widen with `MIRAGE_FUZZ_SEEDS` / `MIRAGE_FUZZ_START` as for the
//! closed-loop sweeps in `mirage-sim`. A failing seed replays with:
//!
//! ```text
//! cargo run --release -p mirage-bench --bin fault_storm -- --openloop --seed <N> --trace
//! ```

use mirage_workloads::{
    run_fuzz_seed_openloop,
    run_fuzz_seed_openloop_traced,
};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

#[test]
fn open_loop_fault_storms_preserve_coherence() {
    let start = env_u64("MIRAGE_FUZZ_START", 0);
    let count = env_u64("MIRAGE_FUZZ_SEEDS", 60);
    let mut failures = Vec::new();
    for seed in start..start + count {
        // Traced: the causal and timestamp oracles both run over the
        // trace inside the harness, cross-checking the in-world
        // quiescence oracles; their violations are in the outcome.
        let (outcome, trace) = run_fuzz_seed_openloop_traced(seed);
        assert!(
            !outcome.completed || !trace.is_empty(),
            "seed {seed}: traced run produced no trace events"
        );
        if !outcome.is_ok() {
            eprintln!("{}", outcome.describe());
            eprintln!(
                "replay: cargo run --release -p mirage-bench --bin fault_storm -- \
                 --openloop --seed {seed} --trace"
            );
            failures.push(seed);
        }
    }
    assert!(
        failures.is_empty(),
        "{} of {count} open-loop fuzz seeds failed: {failures:?} \
         (see stderr for replay commands)",
        failures.len()
    );
}

#[test]
fn a_known_open_loop_seed_does_real_work() {
    // Guard against the harness degenerating into a no-op: some seed in
    // the default range must inject faults while the stations do real
    // shared-memory work.
    let mut exercised = false;
    for seed in 0..12 {
        let outcome = run_fuzz_seed_openloop(seed);
        assert!(outcome.is_ok(), "{}", outcome.describe());
        if let Some(stats) = outcome.stats {
            if outcome.accesses > 50
                && (stats.dropped > 0 || stats.crashes > 0 || stats.dup_discarded > 0)
            {
                exercised = true;
            }
        }
    }
    assert!(exercised, "no seed in 0..12 injected faults into a working open-loop storm");
}
