//! Workload programs for the Mirage simulator.
//!
//! Each workload reproduces an application from the paper's evaluation:
//!
//! * [`pingpong`] — the §7.2 worst case (Figure 4): two processes at
//!   different sites alternately writing adjacent locations on one page;
//! * [`decrement`] — the §8.0 "representative" application (Figure 8):
//!   two conflicting read-writers decrementing separate values on the
//!   same page;
//! * [`ring`] — the N-site version of the worst case ("This application
//!   (or its N-site version) is a worst case for Mirage", §7.2);
//! * [`spinlock`] — the §7.2 test&set experiment: a busy-waiting lock
//!   sharing a page with the data it protects;
//! * [`readers`] — read-mostly sharing with an occasional writer, for
//!   the invalidation-scaling ablation (A4);
//! * [`background`] — a pure-compute process used to measure overall
//!   system throughput while another application thrashes (E10);
//! * [`falseshare`] — two writers on disjoint halves of one page, the
//!   sub-page delta-grant experiment's subject (S1);
//! * [`renewal`] — the write-private/read-shared mix that pits Tardis
//!   lease renewals against invalidation fan-out (T1).
//!
//! [`openloop`] stands apart: instead of a closed-loop program it
//! generates seeded *arrival schedules* (Poisson, deterministic, MMPP)
//! for the simulator's open-loop stations, so offered load is held
//! constant regardless of service capacity — the basis of the L1
//! latency-distribution and saturation experiments, and of the
//! open-loop fuzz family.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod background;
pub mod decrement;
pub mod falseshare;
pub mod openloop;
pub mod pingpong;
pub mod readers;
pub mod renewal;
pub mod ring;
pub mod spinlock;

pub use background::Background;
pub use decrement::Decrementer;
pub use falseshare::FalseSharing;
pub use openloop::{
    build_demands,
    exp_interval,
    latency_records,
    run_fuzz_seed_openloop,
    run_fuzz_seed_openloop_protocol_traced,
    run_fuzz_seed_openloop_traced,
    sample_arrivals,
    ArrivalProcess,
    DemandProfile,
};
pub use pingpong::{
    PingPongPinger,
    PingPongPonger,
};
pub use readers::{
    PeriodicWriter,
    Rereader,
};
pub use renewal::WriteReadMix;
pub use ring::RingMember;
pub use spinlock::{
    LockHolder,
    LockTester,
};
