//! The §7.2 worst-case "ping pong" application (paper Figure 4).
//!
//! Process 1 writes a value into the first of an adjacent pair of
//! locations and waits for Process 2 to write into the second; both then
//! advance to the next pair. Every access to the specific locations
//! causes page faults that transfer the entire page between sites —
//! "analogous to an application executing on a single site that is
//! thrashing."
//!
//! Values are unique per trial so that a location reused after the pair
//! pointer wraps within the page can never satisfy a wait spuriously.

use mirage_sim::{
    MemRef,
    Op,
    Program,
};
use mirage_types::{
    PageNum,
    SegmentId,
    PAGE_SIZE,
};

/// Pairs per page: each pair is two adjacent `u32` locations.
const PAIRS: u32 = (PAGE_SIZE / 8) as u32;

/// The sentinel Process 1 writes after the final trial.
pub const ENDVAL: u32 = u32::MAX;

fn pair_refs(seg: SegmentId, trial: u32) -> (MemRef, MemRef) {
    let k = trial % PAIRS;
    let off = (k * 8) as usize;
    (MemRef::new(seg, PageNum(0), off), MemRef::new(seg, PageNum(0), off + 4))
}

/// The value Process 1 writes in a trial.
fn checkval(trial: u32) -> u32 {
    2 * trial + 2
}

/// Process 1 of Figure 4: writes `CHECKVAL`, waits for `CHECKVAL+1`.
pub struct PingPongPinger {
    seg: SegmentId,
    trials: u32,
    trial: u32,
    state: PingState,
    /// Use `yield()` in the wait loop (the paper's fixed version).
    pub use_yield: bool,
    cycles: u64,
}

enum PingState {
    WriteFirst,
    ReadSecond,
    Decide,
    WriteEnd,
    Finished,
}

impl PingPongPinger {
    /// Builds Process 1 for `trials` cycles over a one-page segment.
    pub fn new(seg: SegmentId, trials: u32, use_yield: bool) -> Self {
        Self { seg, trials, trial: 0, state: PingState::WriteFirst, use_yield, cycles: 0 }
    }
}

impl Program for PingPongPinger {
    fn step(&mut self, last_read: Option<u32>) -> Op {
        loop {
            match self.state {
                PingState::WriteFirst => {
                    if self.trial >= self.trials {
                        self.state = PingState::WriteEnd;
                        continue;
                    }
                    let (first, _) = pair_refs(self.seg, self.trial);
                    self.state = PingState::ReadSecond;
                    return Op::Write(first, checkval(self.trial));
                }
                PingState::ReadSecond => {
                    let (_, second) = pair_refs(self.seg, self.trial);
                    self.state = PingState::Decide;
                    return Op::Read(second);
                }
                PingState::Decide => {
                    let v = last_read.expect("read value delivered");
                    if v == checkval(self.trial) + 1 {
                        // Cycle complete; advance to the next pair.
                        self.cycles += 1;
                        self.trial += 1;
                        self.state = PingState::WriteFirst;
                        continue;
                    }
                    // Not yet: spin (optionally yielding, §7.2).
                    self.state = PingState::ReadSecond;
                    if self.use_yield {
                        return Op::Yield;
                    }
                    continue;
                }
                PingState::WriteEnd => {
                    let (first, _) = pair_refs(self.seg, self.trial);
                    self.state = PingState::Finished;
                    return Op::Write(first, ENDVAL);
                }
                PingState::Finished => return Op::Exit,
            }
        }
    }

    fn metric(&self) -> u64 {
        self.cycles
    }

    fn label(&self) -> &str {
        "pingpong-p1"
    }
}

/// Process 2 of Figure 4: waits for `CHECKVAL`, writes `CHECKVAL+1`.
pub struct PingPongPonger {
    seg: SegmentId,
    trial: u32,
    state: PongState,
    /// Use `yield()` in the wait loop.
    pub use_yield: bool,
    cycles: u64,
}

enum PongState {
    ReadFirst,
    Decide,
    WriteSecond,
    Finished,
}

impl PingPongPonger {
    /// Builds Process 2 over the same one-page segment.
    pub fn new(seg: SegmentId, use_yield: bool) -> Self {
        Self { seg, trial: 0, state: PongState::ReadFirst, use_yield, cycles: 0 }
    }
}

impl Program for PingPongPonger {
    fn step(&mut self, last_read: Option<u32>) -> Op {
        loop {
            match self.state {
                PongState::ReadFirst => {
                    let (first, _) = pair_refs(self.seg, self.trial);
                    self.state = PongState::Decide;
                    return Op::Read(first);
                }
                PongState::Decide => {
                    let v = last_read.expect("read value delivered");
                    if v == ENDVAL {
                        self.state = PongState::Finished;
                        continue;
                    }
                    if v == checkval(self.trial) {
                        self.state = PongState::WriteSecond;
                        continue;
                    }
                    self.state = PongState::ReadFirst;
                    if self.use_yield {
                        return Op::Yield;
                    }
                    continue;
                }
                PongState::WriteSecond => {
                    let (_, second) = pair_refs(self.seg, self.trial);
                    let val = checkval(self.trial) + 1;
                    self.cycles += 1;
                    self.trial += 1;
                    self.state = PongState::ReadFirst;
                    return Op::Write(second, val);
                }
                PongState::Finished => return Op::Exit,
            }
        }
    }

    fn metric(&self) -> u64 {
        self.cycles
    }

    fn label(&self) -> &str {
        "pingpong-p2"
    }
}

#[cfg(test)]
mod tests {
    use mirage_types::SiteId;

    use super::*;

    #[test]
    fn pair_refs_stay_on_one_page_and_wrap() {
        let seg = SegmentId::new(SiteId(0), 1);
        for t in 0..200 {
            let (a, b) = pair_refs(seg, t);
            assert_eq!(a.page, PageNum(0));
            assert_eq!(b.offset, a.offset + 4);
            assert!(b.offset + 4 <= PAGE_SIZE);
        }
        assert_eq!(pair_refs(seg, 0).0.offset, pair_refs(seg, PAIRS).0.offset);
    }

    #[test]
    fn checkvals_unique_across_wrap_window() {
        // Two trials that share a location (wrap distance apart) must use
        // different values.
        assert_ne!(checkval(0), checkval(PAIRS));
        assert_ne!(checkval(0) + 1, checkval(PAIRS));
    }

    #[test]
    fn pinger_sequences_write_then_read() {
        let seg = SegmentId::new(SiteId(0), 1);
        let mut p = PingPongPinger::new(seg, 2, false);
        let op1 = p.step(None);
        assert!(matches!(op1, Op::Write(_, v) if v == checkval(0)));
        let op2 = p.step(None);
        assert!(matches!(op2, Op::Read(_)));
        // Wrong value: spins with another read (no yield).
        let op3 = p.step(Some(0));
        assert!(matches!(op3, Op::Read(_)));
        // Right value: next trial's write.
        let op4 = p.step(Some(checkval(0) + 1));
        assert!(matches!(op4, Op::Write(_, v) if v == checkval(1)));
        assert_eq!(p.metric(), 1);
    }

    #[test]
    fn ponger_answers_and_counts_cycles() {
        let seg = SegmentId::new(SiteId(0), 1);
        let mut p = PingPongPonger::new(seg, true);
        assert!(matches!(p.step(None), Op::Read(_)));
        // Stale value: yields.
        assert!(matches!(p.step(Some(0)), Op::Yield));
        assert!(matches!(p.step(None), Op::Read(_)));
        // Sees CHECKVAL: writes CHECKVAL+1.
        let w = p.step(Some(checkval(0)));
        assert!(matches!(w, Op::Write(_, v) if v == checkval(0) + 1));
        assert_eq!(p.metric(), 1);
        // ENDVAL terminates.
        assert!(matches!(p.step(None), Op::Read(_)));
        assert!(matches!(p.step(Some(ENDVAL)), Op::Exit));
    }
}
