//! A pure-compute background process.
//!
//! Used for E10: "the effect of an application that is thrashing on
//! overall system performance can be ameliorated by adjusting Δ. By
//! increasing Δ, although application throughput is reduced, system
//! performance is improved for other processes." (§7.3)
//!
//! The background process never touches shared memory, so its progress
//! measures how much CPU the thrasher (and the kernel work it induces)
//! leaves for the rest of the system.

use mirage_sim::{
    Op,
    Program,
};
use mirage_types::SimDuration;

/// A compute-only process: repeated fixed-size work chunks.
pub struct Background {
    chunk: SimDuration,
    chunks_done: u64,
}

impl Background {
    /// Builds a background process with the given chunk size.
    pub fn new(chunk: SimDuration) -> Self {
        Self { chunk, chunks_done: 0 }
    }
}

impl Program for Background {
    fn step(&mut self, _last_read: Option<u32>) -> Op {
        self.chunks_done += 1;
        Op::Compute(self.chunk)
    }

    fn metric(&self) -> u64 {
        self.chunks_done.saturating_sub(1)
    }

    fn label(&self) -> &str {
        "background"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn background_computes_forever() {
        let mut b = Background::new(SimDuration::from_millis(10));
        for _ in 0..5 {
            assert!(matches!(b.step(None), Op::Compute(_)));
        }
        assert_eq!(b.metric(), 4, "last chunk not yet complete");
    }
}
