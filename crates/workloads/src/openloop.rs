//! Open-loop arrival processes, demand schedules, and the open-loop
//! fuzz family.
//!
//! Every other workload in this crate is closed-loop: the next access
//! issues only after the previous one completes, so offered load
//! self-throttles to service capacity and tail latency never exhibits
//! saturation. The open-loop generator fixes the *arrival schedule* up
//! front — interarrival gaps drawn from a seeded arrival process — and
//! the simulator injects each demand at its scheduled sim-time whether
//! or not earlier demands have finished
//! ([`mirage_sim::OpenLoopStation`]). Queueing delay then becomes
//! visible: past the saturation knee the queue grows without bound over
//! the schedule and p99 sojourn time explodes, which is exactly the
//! signal the L1 experiment sweeps for.
//!
//! Three arrival processes cover the classic shapes:
//!
//! * [`ArrivalProcess::Poisson`] — memoryless arrivals via inverse-CDF
//!   exponential sampling over the deterministic PRNG (interarrival
//!   CV = 1);
//! * [`ArrivalProcess::Deterministic`] — a fixed interval (CV = 0), the
//!   smoothest arrival stream a given rate admits;
//! * [`ArrivalProcess::Mmpp`] — a two-state Markov-modulated Poisson
//!   process (CV > 1): dwell times in a low-rate and a high-rate state
//!   are themselves exponential, producing the bursty arrivals that
//!   stress queue depth hardest at a given mean rate.
//!
//! All sampling flows through [`mirage_types::Prng`], so a seed fully
//! determines the schedule and every latency distribution downstream is
//! bit-reproducible.

use mirage_core::{
    DeltaPolicy,
    RetryPolicy,
};
use mirage_net::{
    CrashEvent,
    FaultPlan,
    LinkFaults,
};
use mirage_sim::{
    authoritative_value,
    structural_violations,
    FuzzOutcome,
    FuzzProtocol,
    MemRef,
    OpenLoopDemand,
    OpenLoopStation,
    SimConfig,
    StationHandle,
    World,
};
use mirage_types::{
    Access,
    Delta,
    PageNum,
    Prng,
    SegmentId,
    SimDuration,
    SimTime,
    SiteId,
};

/// A seeded arrival process: how interarrival gaps are drawn.
#[derive(Clone, Copy, Debug)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at `rate_per_sec`: interarrival gaps are
    /// exponential, sampled by inverse CDF over the PRNG.
    Poisson {
        /// Mean arrival rate, requests per simulated second.
        rate_per_sec: f64,
    },
    /// One arrival every `interval`, exactly.
    Deterministic {
        /// The fixed interarrival gap.
        interval: SimDuration,
    },
    /// Two-state Markov-modulated Poisson process: the source dwells in
    /// a low-rate or high-rate state (exponential dwell times with mean
    /// `mean_dwell`) and emits Poisson arrivals at the state's rate.
    /// Burstier than Poisson at the same mean rate.
    Mmpp {
        /// Arrival rate in the quiet state, requests per second.
        rate_lo: f64,
        /// Arrival rate in the burst state, requests per second.
        rate_hi: f64,
        /// Mean dwell time in each state.
        mean_dwell: SimDuration,
    },
}

impl ArrivalProcess {
    /// The long-run mean arrival rate in requests per simulated second
    /// (for MMPP the states are symmetric-dwell, so the simple average).
    pub fn mean_rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_per_sec } => rate_per_sec,
            ArrivalProcess::Deterministic { interval } => 1e9 / interval.0 as f64,
            ArrivalProcess::Mmpp { rate_lo, rate_hi, .. } => (rate_lo + rate_hi) / 2.0,
        }
    }
}

/// One exponential interarrival gap at `rate_per_sec`, by inverse CDF.
///
/// The uniform draw maps the top 53 bits of the PRNG word into `(0, 1]`
/// — the `+ 1.0` excludes 0, so `ln` never sees it and the sample is
/// always finite.
///
/// # Panics
///
/// Panics if `rate_per_sec` is not strictly positive.
pub fn exp_interval(rng: &mut Prng, rate_per_sec: f64) -> SimDuration {
    assert!(rate_per_sec > 0.0, "exponential rate must be positive");
    let u = ((rng.next_u64() >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
    SimDuration((-u.ln() / rate_per_sec * 1e9) as u64)
}

/// Samples every arrival of `process` in `(0, horizon)`, ascending.
///
/// The first gap starts at time zero, so an arrival lands *at* zero
/// only in the measure-zero case of a zero-length first gap. Sampling
/// consumes PRNG draws proportional to the arrival count, so distinct
/// stations should use distinct seeds (or one shared stream, drawn in
/// a fixed order).
pub fn sample_arrivals(
    process: ArrivalProcess,
    rng: &mut Prng,
    horizon: SimDuration,
) -> Vec<SimTime> {
    let end = SimTime::ZERO + horizon;
    let mut out = Vec::new();
    match process {
        ArrivalProcess::Poisson { rate_per_sec } => {
            let mut t = SimTime::ZERO;
            loop {
                t += exp_interval(rng, rate_per_sec);
                if t >= end {
                    break;
                }
                out.push(t);
            }
        }
        ArrivalProcess::Deterministic { interval } => {
            assert!(interval.0 > 0, "deterministic interval must be positive");
            let mut t = SimTime::ZERO;
            loop {
                t += interval;
                if t >= end {
                    break;
                }
                out.push(t);
            }
        }
        ArrivalProcess::Mmpp { rate_lo, rate_hi, mean_dwell } => {
            assert!(mean_dwell.0 > 0, "MMPP dwell time must be positive");
            let dwell_rate = 1e9 / mean_dwell.0 as f64;
            let mut t = SimTime::ZERO;
            let mut burst = false;
            loop {
                let rate = if burst { rate_hi } else { rate_lo };
                // Competing exponentials: whichever of the next arrival
                // and the next state switch comes first, happens. Both
                // are memoryless, so the loser is simply redrawn.
                let to_arrival = exp_interval(rng, rate);
                let to_switch = exp_interval(rng, dwell_rate);
                if to_arrival <= to_switch {
                    t += to_arrival;
                    if t >= end {
                        break;
                    }
                    out.push(t);
                } else {
                    t += to_switch;
                    burst = !burst;
                    if t >= end {
                        break;
                    }
                }
            }
        }
    }
    out
}

/// What one station's demands look like: which pages, how write-heavy,
/// and which word the writes land on.
#[derive(Clone, Copy, Debug)]
pub struct DemandProfile {
    /// The shared segment.
    pub seg: SegmentId,
    /// Demands touch pages `0..pages` of the segment, uniformly.
    pub pages: u64,
    /// Word-aligned byte offset this station's writes land on. Stations
    /// with disjoint write offsets never overwrite each other, which is
    /// what makes the last-scheduled-write visibility oracle exact.
    pub write_offset: usize,
    /// Reads sample a word offset uniformly from `0..read_words` words
    /// (so they observe other stations' values too).
    pub read_words: u64,
    /// Percentage of demands that are writes (`0..=100`).
    pub write_pct: u64,
    /// First value written; subsequent writes count up monotonically.
    pub value_base: u32,
}

/// Draws a demand for every arrival and returns the schedule along
/// with the expected final value per page (the last write scheduled to
/// that page, exact when one worker drains the station FIFO).
pub fn build_demands(
    arrivals: &[SimTime],
    profile: &DemandProfile,
    rng: &mut Prng,
) -> (Vec<(SimTime, OpenLoopDemand)>, Vec<Option<u32>>) {
    assert!(profile.pages > 0, "a demand profile needs at least one page");
    assert!(profile.write_pct <= 100, "write_pct is a percentage");
    let mut expected = vec![None; profile.pages as usize];
    let mut next_val = profile.value_base;
    let demands = arrivals
        .iter()
        .map(|&at| {
            let page = PageNum(rng.below(profile.pages) as u32);
            let write = rng.below(100) < profile.write_pct;
            let d = if write {
                let v = next_val;
                next_val += 1;
                expected[page.index()] = Some(v);
                OpenLoopDemand {
                    r: MemRef::new(profile.seg, page, profile.write_offset),
                    access: Access::Write,
                    value: v,
                }
            } else {
                let off = rng.below(profile.read_words.max(1)) as usize * 4;
                OpenLoopDemand {
                    r: MemRef::new(profile.seg, page, off),
                    access: Access::Read,
                    value: 0,
                }
            };
            (at, d)
        })
        .collect();
    (demands, expected)
}

/// Record-lifecycle violations for one finished station: every record
/// granted, stamps ordered `arrival ≤ submit ≤ grant`, and (with one
/// worker) submits in FIFO order.
fn record_violations(label: &str, station: &StationHandle) -> Vec<String> {
    let s = station.lock().expect("station poisoned");
    let mut violations = Vec::new();
    let mut last_submit = SimTime::ZERO;
    for (i, r) in s.records.iter().enumerate() {
        let (Some(submit), Some(grant)) = (r.submit, r.grant) else {
            violations.push(format!(
                "{label}: record {i} never completed (submit {:?}, grant {:?})",
                r.submit, r.grant
            ));
            continue;
        };
        if submit < r.arrival || grant < submit {
            violations.push(format!(
                "{label}: record {i} stamps out of order: arrival {:?}, \
                 submit {submit:?}, grant {grant:?}",
                r.arrival
            ));
        }
        if submit < last_submit {
            violations.push(format!(
                "{label}: record {i} submitted at {submit:?}, before its \
                 predecessor at {last_submit:?} (FIFO order broken)"
            ));
        }
        last_submit = submit;
    }
    violations
}

/// Classic-profile open-loop fuzz: Mirage protocol, untraced.
pub fn run_fuzz_seed_openloop(seed: u64) -> FuzzOutcome {
    run_fuzz_seed_openloop_protocol_traced(seed, false, FuzzProtocol::Mirage).0
}

/// Classic-profile open-loop fuzz with both offline trace oracles
/// (causal + timestamp) asserted by the caller over the returned trace.
pub fn run_fuzz_seed_openloop_traced(
    seed: u64,
) -> (FuzzOutcome, Vec<mirage_trace::TraceEvent>) {
    run_fuzz_seed_openloop_protocol_traced(seed, true, FuzzProtocol::Mirage)
}

/// The open-loop fuzz scenario: 2–4 sites, each hosting one open-loop
/// station whose arrival process (Poisson, deterministic, or MMPP) and
/// demand mix are drawn from the seed, run under a classic-profile
/// fault storm (drops, duplicates, delays, up to two site crashes)
/// with a clean convergence window after the horizon.
///
/// Oracles at quiescence, all folded into the outcome's violations:
///
/// 1. structural coherence ([`mirage_sim::structural_violations`] —
///    §5.0 invariants for Mirage/Li, ownership discipline for Tardis);
/// 2. write visibility: each station writes a private word, so the
///    last *scheduled* write to each page must be the authoritative
///    value ([`mirage_sim::authoritative_value`]);
/// 3. record lifecycle: every injected demand granted, stamps ordered
///    `arrival ≤ submit ≤ grant`, submits FIFO per station.
///
/// When `traced`, both offline trace oracles (`mirage_trace::check`
/// and `check_timestamps`) also run, their violations folded into the
/// outcome; the raw trace is returned for further inspection.
///
/// The protocol selector is applied after every PRNG draw, so for a
/// given seed all protocols replay the bit-identical scenario.
pub fn run_fuzz_seed_openloop_protocol_traced(
    seed: u64,
    traced: bool,
    protocol: FuzzProtocol,
) -> (FuzzOutcome, Vec<mirage_trace::TraceEvent>) {
    let mut rng = Prng::new(seed ^ 0x0BE9_C0DE);
    let n_sites = 2 + rng.below(3) as usize; // 2..=4
    let pages = 1 + rng.below(2); // 1..=2

    let mut cfg = SimConfig::default();
    // Δ ≥ 1 tick, never 0. Under *sustained* open-loop backlog, Δ = 0
    // admits genuine starvation: an invalidate that raced ahead of the
    // page-carrying grant is honored the instant the page installs, so
    // the page leaves before the faulting process gets the CPU, every
    // contender refaults in turn, and the rotation is a stable limit
    // cycle that never completes a single write (seeds 91, 101 of the
    // Δ∈{0,1,2} variant ran 120 simulated seconds without progress).
    // That is precisely the §7.2 thrashing the paper introduced Δ to
    // prevent — the closed-loop fuzz never sustains it because its
    // queues drain, but an open-loop schedule keeps all stations'
    // backlogs non-empty indefinitely. One tick of window already
    // guarantees the granted access completes (context switch + access
    // cost ≪ 16.6 ms), so the sweep pins Δ ∈ {1, 2}.
    cfg.protocol.delta = DeltaPolicy::Uniform(Delta(1 + rng.below(2) as u32));
    cfg.protocol.retry = Some(RetryPolicy::default());

    // Storm horizon 0.8–2.0 s, then a perfect network: the run must
    // converge, not merely survive.
    let horizon_ms = 800 + rng.below(1_200);
    let horizon = SimTime::ZERO + SimDuration::from_millis(horizon_ms);
    let mut plan = FaultPlan::none();
    plan.seed = seed;
    plan.horizon = horizon;
    plan.gap_wait = SimDuration::from_millis(25);
    plan.default_link = LinkFaults {
        drop_pm: rng.below(300) as u32,
        dup_pm: rng.below(200) as u32,
        delay_pm: rng.below(1_500) as u32,
        max_delay: SimDuration::from_millis(1 + rng.below(30)),
    };
    let mut candidates: Vec<usize> = (0..n_sites).collect();
    for _ in 0..rng.below(3) {
        let site = candidates.swap_remove(rng.below(candidates.len() as u64) as usize);
        let at = SimTime::ZERO + SimDuration::from_millis(200 + rng.below(horizon_ms - 400));
        let down = SimDuration::from_millis(80 + rng.below(600));
        plan.crashes.push(CrashEvent { site: SiteId(site as u16), at, back_at: at + down });
    }
    let active = plan.is_active();

    // Set after every config-shaping draw: the rival protocols replay
    // the exact same storm and schedules.
    protocol.apply(&mut cfg);

    let mut world = World::new(n_sites, cfg);
    if traced {
        world.enable_tracing();
    }
    let seg = world.create_segment(0, pages as usize);
    world.install_fault_plan(plan);

    // One station per site, one worker each (so submits are FIFO and
    // the last scheduled write per page is the authoritative value).
    // Arrivals continue past the storm horizon into the clean window.
    let arr_horizon = SimDuration::from_millis(horizon_ms + 300);
    let mut stations: Vec<(String, StationHandle, Vec<Option<u32>>, usize)> = Vec::new();
    for site in 0..n_sites {
        let process = match rng.below(3) {
            0 => ArrivalProcess::Poisson { rate_per_sec: 20.0 + rng.below(100) as f64 },
            1 => ArrivalProcess::Deterministic {
                interval: SimDuration::from_millis(8 + rng.below(32)),
            },
            _ => ArrivalProcess::Mmpp {
                rate_lo: 10.0 + rng.below(30) as f64,
                rate_hi: 80.0 + rng.below(120) as f64,
                mean_dwell: SimDuration::from_millis(50 + rng.below(200)),
            },
        };
        let arrivals = sample_arrivals(process, &mut rng, arr_horizon);
        let profile = DemandProfile {
            seg,
            pages,
            write_offset: site * 4,
            read_words: n_sites as u64,
            write_pct: 40 + rng.below(40),
            value_base: (site as u32 + 1) * 1_000_000,
        };
        let (demands, expected) = build_demands(&arrivals, &profile, &mut rng);
        let handle = world.install_open_loop(OpenLoopStation {
            site,
            demands,
            workers: 1,
            shm_pages: pages as usize,
        });
        stations.push((format!("station {site}"), handle, expected, site * 4));
    }

    let deadline = horizon + SimDuration::from_millis(120_000);
    let completed = world.run_to_completion(deadline);
    // Quiescence: drain residual protocol traffic before checking state.
    world.run_for(SimDuration::from_millis(5_000));

    let mut violations = Vec::new();
    if completed {
        violations.extend(structural_violations(&world, seg, pages, protocol));
        for (label, handle, expected, write_offset) in &stations {
            for (p, want) in expected.iter().enumerate() {
                let Some(want) = want else { continue };
                let page = PageNum(p as u32);
                let got = authoritative_value(&world, seg, page, *write_offset, protocol);
                if got != Some(*want) {
                    violations.push(format!(
                        "write visibility: {label} page {p}: last scheduled write \
                         {want}, authoritative copy holds {got:?}"
                    ));
                }
            }
            violations.extend(record_violations(label, handle));
        }
    }

    let trace = world.take_trace();
    if traced && completed {
        let report = mirage_trace::check(&trace);
        for v in report.violations {
            violations.push(format!("trace checker: {v}"));
        }
        let ts = mirage_trace::check_timestamps(&trace);
        for v in ts.violations {
            violations.push(format!("timestamp oracle: {v}"));
        }
    }

    (
        FuzzOutcome {
            seed,
            completed,
            violations,
            stuck: world.stuck_pids(),
            stats: if active { world.fault_stats() } else { None },
            accesses: world.total_accesses(),
        },
        trace,
    )
}

/// Drains the records of a finished station into latency records (one
/// per granted request), for the `mirage-trace` latency pipeline.
pub fn latency_records(station: &StationHandle) -> Vec<mirage_trace::LatencyRecord> {
    let s = station.lock().expect("station poisoned");
    s.records
        .iter()
        .filter_map(|r| {
            let (submit, grant) = (r.submit?, r.grant?);
            Some(mirage_trace::LatencyRecord {
                arrival_ns: r.arrival.0,
                submit_ns: submit.0,
                grant_ns: grant.0,
                depth_at_submit: r.depth_at_submit,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Interarrival gaps of `process` over a long horizon, in seconds.
    fn gaps(process: ArrivalProcess, seed: u64, horizon_s: u64) -> Vec<f64> {
        let mut rng = Prng::new(seed);
        let arrivals =
            sample_arrivals(process, &mut rng, SimDuration::from_millis(horizon_s * 1_000));
        let mut prev = 0u64;
        arrivals
            .iter()
            .map(|t| {
                let gap = (t.0 - prev) as f64 / 1e9;
                prev = t.0;
                gap
            })
            .collect()
    }

    fn mean(xs: &[f64]) -> f64 {
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    fn variance(xs: &[f64]) -> f64 {
        let m = mean(xs);
        xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
    }

    // Satellite: statistical properties of the Poisson sampler. All
    // bounds are deterministic for the pinned seed — the sampler is a
    // pure function of the PRNG stream, so these can never flake.

    #[test]
    fn poisson_mean_matches_rate() {
        // 100 req/s over 200 s ⇒ ~20 000 samples; the sample mean of
        // an exponential concentrates tightly (σ/√n ≈ 0.07 ms here).
        let g = gaps(ArrivalProcess::Poisson { rate_per_sec: 100.0 }, 0xA11CE, 200);
        assert!(g.len() > 18_000, "expected ~20k arrivals, got {}", g.len());
        let m = mean(&g);
        assert!(
            (m - 0.010).abs() < 0.0003,
            "mean interarrival {m} should be within 3% of 10 ms"
        );
    }

    #[test]
    fn poisson_interarrival_cv_is_one() {
        // Exponential gaps have σ = mean, so CV = 1.
        let g = gaps(ArrivalProcess::Poisson { rate_per_sec: 100.0 }, 0xB0B, 200);
        let cv = variance(&g).sqrt() / mean(&g);
        assert!((cv - 1.0).abs() < 0.05, "Poisson interarrival CV {cv} should be ≈1");
    }

    #[test]
    fn poisson_counts_are_poisson_distributed() {
        // Fano factor: variance/mean of counts in fixed windows is 1
        // for a Poisson process (vs 0 deterministic, >1 bursty).
        let mut rng = Prng::new(0xFA40);
        let arrivals = sample_arrivals(
            ArrivalProcess::Poisson { rate_per_sec: 50.0 },
            &mut rng,
            SimDuration::from_millis(400_000),
        );
        let window = 1_000_000_000u64; // 1 s windows, mean 50 per window
        let mut counts = vec![0.0f64; 400];
        for t in &arrivals {
            counts[(t.0 / window) as usize] += 1.0;
        }
        let fano = variance(&counts) / mean(&counts);
        assert!((fano - 1.0).abs() < 0.15, "Poisson Fano factor {fano} should be ≈1");
    }

    #[test]
    fn poisson_chi_squared_against_exponential_cdf() {
        // Bucket gaps into 8 equal-probability exponential quantile
        // bins: boundaries at -ln(1 - k/8)/rate. Expected count per
        // bin is n/8; the chi-squared statistic over 7 degrees of
        // freedom has mean 7 and σ ≈ 3.7, so 30 is a ~6σ bound —
        // coarse, but it catches a broken sampler (uniform gaps score
        // in the thousands) and is exact for the pinned seed.
        let rate = 100.0;
        let g = gaps(ArrivalProcess::Poisson { rate_per_sec: rate }, 0xC41, 200);
        let n = g.len() as f64;
        let bounds: Vec<f64> = (1..8).map(|k| -(1.0 - k as f64 / 8.0).ln() / rate).collect();
        let mut observed = [0.0f64; 8];
        for &gap in &g {
            let bin = bounds.iter().position(|&b| gap < b).unwrap_or(7);
            observed[bin] += 1.0;
        }
        let expected = n / 8.0;
        let chi2: f64 =
            observed.iter().map(|&o| (o - expected) * (o - expected) / expected).sum();
        assert!(chi2 < 30.0, "chi-squared {chi2} too large for exponential gaps");
    }

    #[test]
    fn deterministic_gaps_are_exact() {
        let interval = SimDuration::from_millis(10);
        let mut rng = Prng::new(1);
        let arrivals = sample_arrivals(
            ArrivalProcess::Deterministic { interval },
            &mut rng,
            SimDuration::from_millis(1_000),
        );
        assert_eq!(arrivals.len(), 99); // 10, 20, …, 990 ms
        assert!(arrivals.iter().enumerate().all(|(i, t)| t.0 == (i as u64 + 1) * 10_000_000));
    }

    #[test]
    fn mmpp_is_burstier_than_poisson_at_same_mean_rate() {
        let mmpp = ArrivalProcess::Mmpp {
            rate_lo: 20.0,
            rate_hi: 180.0,
            mean_dwell: SimDuration::from_millis(100),
        };
        let g = gaps(mmpp, 0x3147, 400);
        let cv = variance(&g).sqrt() / mean(&g);
        assert!(cv > 1.15, "MMPP interarrival CV {cv} should exceed Poisson's 1");
        // Mean rate stays between the two state rates.
        let rate = 1.0 / mean(&g);
        assert!((20.0..180.0).contains(&rate), "MMPP mean rate {rate} outside its state rates");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        for process in [
            ArrivalProcess::Poisson { rate_per_sec: 75.0 },
            ArrivalProcess::Mmpp {
                rate_lo: 10.0,
                rate_hi: 90.0,
                mean_dwell: SimDuration::from_millis(80),
            },
        ] {
            let mut a = Prng::new(42);
            let mut b = Prng::new(42);
            let h = SimDuration::from_millis(5_000);
            assert_eq!(
                sample_arrivals(process, &mut a, h),
                sample_arrivals(process, &mut b, h)
            );
        }
    }

    #[test]
    fn build_demands_tracks_last_write_per_page() {
        let seg = SegmentId::new(SiteId(0), 0);
        let arrivals: Vec<SimTime> =
            (1..=50).map(|i| SimTime::ZERO + SimDuration::from_millis(i)).collect();
        let profile = DemandProfile {
            seg,
            pages: 2,
            write_offset: 8,
            read_words: 4,
            write_pct: 100,
            value_base: 1_000,
        };
        let mut rng = Prng::new(9);
        let (demands, expected) = build_demands(&arrivals, &profile, &mut rng);
        assert_eq!(demands.len(), 50);
        // Replay the schedule: the recorded expectation must match the
        // last write each page actually received.
        let mut last = [None, None];
        for (_, d) in &demands {
            assert_eq!(d.access, Access::Write);
            assert_eq!(d.r.offset, 8);
            last[d.r.page.index()] = Some(d.value);
        }
        assert_eq!(expected, last);
    }
}
