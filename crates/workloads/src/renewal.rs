//! The lease-renewal mix: each site alternates a write to a contended
//! write page with a read of one shared page (T1).
//!
//! This is the access shape that separates timestamp coherence from
//! invalidation coherence. The write page is shared with at least one
//! other writer, so ownership keeps transferring and every transfer is
//! a write *fault*; under Tardis each such fault serializes past the
//! page's read leases and drags the writer's program timestamp
//! forward, so its lease on the separate shared page keeps expiring
//! and must be renewed — usually a header-only exchange, since the
//! shared page's version only moves when its own writer bumps it.
//! Under Mirage or Li–Hudak the same reads stay free until the shared
//! page's writer invalidates the copy, at which point the whole reader
//! set pays the fan-out. Pairing this program with a
//! [`crate::PeriodicWriter`] on the shared page puts the renewal
//! column and the invalidation column of the T1 table in direct
//! competition.
//!
//! An *uncontended* write page defeats the experiment: its owner
//! writes locally forever, no protocol events occur, the owner's
//! program timestamp never advances, and its shared-page lease never
//! expires.

use mirage_sim::{
    MemRef,
    Op,
    Program,
};
use mirage_types::{
    PageNum,
    SegmentId,
    SimDuration,
};

/// One site's strand of the renewal mix: write the contended page,
/// read the shared one, think, repeat (forever — the harness bounds
/// the run by sim time).
pub struct WriteReadMix {
    write: MemRef,
    shared: MemRef,
    think: SimDuration,
    phase: u8,
    iterations: u64,
}

impl WriteReadMix {
    /// Builds the program: writes hit offset 0 of `write_page` (which
    /// should be contended by another site's mix — see the module
    /// docs), reads poll offset 0 of `shared_page`, with `think` of
    /// private compute per iteration.
    pub fn new(
        seg: SegmentId,
        write_page: PageNum,
        shared_page: PageNum,
        think: SimDuration,
    ) -> Self {
        Self {
            write: MemRef::new(seg, write_page, 0),
            shared: MemRef::new(seg, shared_page, 0),
            think,
            phase: 0,
            iterations: 0,
        }
    }
}

impl Program for WriteReadMix {
    fn step(&mut self, _last_read: Option<u32>) -> Op {
        let phase = self.phase;
        self.phase = (self.phase + 1) % 3;
        match phase {
            0 => Op::Write(self.write, self.iterations as u32),
            1 => Op::Read(self.shared),
            _ => {
                self.iterations += 1;
                Op::Compute(self.think)
            }
        }
    }

    fn metric(&self) -> u64 {
        self.iterations
    }

    fn label(&self) -> &str {
        "write-read-mix"
    }
}
