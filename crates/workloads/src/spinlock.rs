//! The §7.2 test&set experiment.
//!
//! "After a locking writer sets the bit to enter a critical section, the
//! testing reader obtains the page remotely. When the locking writer
//! completes, it faults on write to clear the lock bit and exit the
//! critical section. If the locking writer requires use of the page for
//! data access while the region is locked, the tester and the writer
//! thrash the page."
//!
//! The lock word and the protected data live on the same page — the
//! configuration the paper warns against.

use mirage_sim::{
    MemRef,
    Op,
    Program,
};
use mirage_types::{
    PageNum,
    SegmentId,
};

/// Lock word offset within the page.
const LOCK_OFF: usize = 0;
/// Protected data offset (same page!).
const DATA_OFF: usize = 64;

/// The locking writer: acquires, touches data `writes_in_cs` times,
/// releases, repeats.
pub struct LockHolder {
    seg: SegmentId,
    sections: u32,
    writes_in_cs: u32,
    done_sections: u64,
    w: u32,
    state: HolderState,
}

enum HolderState {
    Acquire,
    DataWrite,
    Release,
    Finished,
}

impl LockHolder {
    /// Builds the holder for `sections` critical sections with
    /// `writes_in_cs` data writes each.
    pub fn new(seg: SegmentId, sections: u32, writes_in_cs: u32) -> Self {
        Self {
            seg,
            sections,
            writes_in_cs,
            done_sections: 0,
            w: 0,
            state: HolderState::Acquire,
        }
    }

    fn lock(&self) -> MemRef {
        MemRef::new(self.seg, PageNum(0), LOCK_OFF)
    }

    fn data(&self) -> MemRef {
        MemRef::new(self.seg, PageNum(0), DATA_OFF)
    }
}

impl Program for LockHolder {
    fn step(&mut self, _last_read: Option<u32>) -> Op {
        match self.state {
            HolderState::Acquire => {
                if self.done_sections >= u64::from(self.sections) {
                    self.state = HolderState::Finished;
                    return Op::Exit;
                }
                // test&set: an interlocked write to the lock word. In a
                // write-invalidate DSM the set *is* a write access.
                self.w = 0;
                self.state = HolderState::DataWrite;
                Op::Write(self.lock(), 1)
            }
            HolderState::DataWrite => {
                self.w += 1;
                if self.w >= self.writes_in_cs {
                    self.state = HolderState::Release;
                }
                Op::Write(self.data(), self.w)
            }
            HolderState::Release => {
                self.done_sections += 1;
                self.state = HolderState::Acquire;
                Op::Write(self.lock(), 0)
            }
            HolderState::Finished => Op::Exit,
        }
    }

    fn metric(&self) -> u64 {
        self.done_sections
    }

    fn label(&self) -> &str {
        "lock-holder"
    }
}

/// The busy-waiting tester: spins reading the lock word (the paper's
/// ill-fated test&set reader), counting the lock-free observations.
pub struct LockTester {
    seg: SegmentId,
    observations: u32,
    seen_free: u64,
    polls: u64,
    reading: bool,
    /// Spin with `yield()` (the paper's recommendation) or raw.
    pub use_yield: bool,
}

impl LockTester {
    /// Builds the tester; it exits after observing the lock free
    /// `observations` times.
    pub fn new(seg: SegmentId, observations: u32, use_yield: bool) -> Self {
        Self { seg, observations, seen_free: 0, polls: 0, reading: false, use_yield }
    }
}

impl Program for LockTester {
    fn step(&mut self, last_read: Option<u32>) -> Op {
        if self.reading {
            self.reading = false;
            self.polls += 1;
            if last_read == Some(0) {
                self.seen_free += 1;
                if self.seen_free >= u64::from(self.observations) {
                    return Op::Exit;
                }
            }
            if self.use_yield {
                return Op::Yield;
            }
        }
        self.reading = true;
        Op::Read(MemRef::new(self.seg, PageNum(0), LOCK_OFF))
    }

    fn metric(&self) -> u64 {
        self.seen_free
    }

    fn label(&self) -> &str {
        "lock-tester"
    }
}

#[cfg(test)]
mod tests {
    use mirage_types::SiteId;

    use super::*;

    #[test]
    fn holder_acquires_writes_releases() {
        let seg = SegmentId::new(SiteId(0), 1);
        let mut h = LockHolder::new(seg, 1, 2);
        assert!(matches!(h.step(None), Op::Write(r, 1) if r.offset == LOCK_OFF));
        assert!(matches!(h.step(None), Op::Write(r, 1) if r.offset == DATA_OFF));
        assert!(matches!(h.step(None), Op::Write(r, 2) if r.offset == DATA_OFF));
        assert!(matches!(h.step(None), Op::Write(r, 0) if r.offset == LOCK_OFF));
        assert_eq!(h.metric(), 1);
        assert!(matches!(h.step(None), Op::Exit));
    }

    #[test]
    fn tester_counts_free_observations() {
        let seg = SegmentId::new(SiteId(0), 1);
        let mut t = LockTester::new(seg, 2, false);
        assert!(matches!(t.step(None), Op::Read(_)));
        assert!(matches!(t.step(Some(1)), Op::Read(_)), "locked: keep spinning");
        assert!(matches!(t.step(Some(0)), Op::Read(_)), "one free seen");
        assert!(matches!(t.step(Some(0)), Op::Exit), "second free seen");
        assert_eq!(t.metric(), 2);
    }

    #[test]
    fn yielding_tester_interleaves_yields() {
        let seg = SegmentId::new(SiteId(0), 1);
        let mut t = LockTester::new(seg, 1, true);
        assert!(matches!(t.step(None), Op::Read(_)));
        assert!(matches!(t.step(Some(1)), Op::Yield));
        assert!(matches!(t.step(None), Op::Read(_)));
    }
}
