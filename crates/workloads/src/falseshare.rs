//! False sharing: two writers on disjoint halves of one page.
//!
//! The protocol's coherence unit is the 512-byte page, so two processes
//! that never touch the same word still serialize through the full
//! demand/invalidate/grant machinery when their words share a page —
//! and every ownership transfer ships all 512 bytes for a handful of
//! changed ones. This workload is the delta-grant experiment's subject
//! (S1): each writer scribbles seeded-pseudorandom values over its own
//! half with seeded think-time between stores, so the page ping-pongs
//! between the sites while each tenure dirties only a few words.

use mirage_sim::{
    MemRef,
    Op,
    Program,
};
use mirage_types::{
    PageNum,
    Prng,
    SegmentId,
    SimDuration,
};

/// One of the two half-page writers.
///
/// The offset sequence, values, think-times, and read interleave all
/// derive from the seed, so a sweep over seeds is deterministic at any
/// `--jobs` value.
pub struct FalseSharing {
    seg: SegmentId,
    /// Base byte offset of this writer's half (0 or 256).
    base: usize,
    rng: Prng,
    remaining: u32,
    phase: Phase,
    writes: u64,
}

enum Phase {
    Store,
    Think,
    ReadBack,
}

impl FalseSharing {
    /// A writer over `half` (0 = bytes 0..256, 1 = bytes 256..512) of
    /// page 0, performing `writes` stores derived from `seed`.
    pub fn new(seg: SegmentId, half: usize, seed: u64, writes: u32) -> Self {
        assert!(half < 2, "a page has two halves");
        Self {
            seg,
            base: half * 256,
            // Mix the half in so the two writers never mirror each other
            // even when spawned with the same seed.
            rng: Prng::new(seed ^ (half as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            remaining: writes,
            phase: Phase::Store,
            writes: 0,
        }
    }

    /// A random word-aligned reference within this writer's half.
    fn word(&mut self) -> MemRef {
        let off = self.base + self.rng.below(64) as usize * 4;
        MemRef::new(self.seg, PageNum(0), off)
    }
}

impl Program for FalseSharing {
    fn step(&mut self, _last_read: Option<u32>) -> Op {
        match self.phase {
            Phase::Store => {
                if self.remaining == 0 {
                    return Op::Exit;
                }
                self.remaining -= 1;
                self.writes += 1;
                self.phase = Phase::Think;
                let w = self.word();
                Op::Write(w, self.rng.next_u32())
            }
            Phase::Think => {
                // Roughly one read-back per eight stores keeps read
                // faults in the mix without turning it read-mostly.
                self.phase =
                    if self.rng.below(8) == 0 { Phase::ReadBack } else { Phase::Store };
                // Private computation between stores: long enough that a
                // competing demand steals the page mid-run, so ownership
                // ping-pongs and each tenure dirties only a few words.
                Op::Compute(SimDuration::from_micros(500 + self.rng.below(4000)))
            }
            Phase::ReadBack => {
                self.phase = Phase::Store;
                let r = self.word();
                Op::Read(r)
            }
        }
    }

    fn metric(&self) -> u64 {
        self.writes
    }

    fn label(&self) -> &str {
        "false-sharing"
    }
}

#[cfg(test)]
mod tests {
    use mirage_types::SiteId;

    use super::*;

    #[test]
    fn halves_never_overlap() {
        let seg = SegmentId::new(SiteId(0), 1);
        for half in 0..2 {
            let mut p = FalseSharing::new(seg, half, 42, 200);
            let (lo, hi) = (half * 256, half * 256 + 256);
            loop {
                match p.step(Some(0)) {
                    Op::Write(r, _) | Op::Read(r) => {
                        assert!(r.offset >= lo && r.offset < hi, "escaped its half");
                        assert_eq!(r.offset % 4, 0, "unaligned");
                    }
                    Op::Compute(d) => assert!(d >= SimDuration::from_micros(500)),
                    Op::Exit => break,
                    other => panic!("unexpected {other:?}"),
                }
            }
            assert_eq!(p.metric(), 200);
        }
    }

    #[test]
    fn sequence_is_seed_deterministic() {
        let seg = SegmentId::new(SiteId(0), 1);
        let run = |seed| {
            let mut p = FalseSharing::new(seg, 0, seed, 50);
            let mut ops = Vec::new();
            loop {
                match p.step(Some(7)) {
                    Op::Write(r, v) => ops.push((r.offset, v)),
                    Op::Read(r) => ops.push((r.offset, u32::MAX)),
                    Op::Compute(d) => ops.push((0, d.0 as u32)),
                    Op::Exit => break,
                    other => panic!("unexpected {other:?}"),
                }
            }
            ops
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn same_seed_different_halves_diverge() {
        let seg = SegmentId::new(SiteId(0), 1);
        let offsets = |half: usize| {
            let mut p = FalseSharing::new(seg, half, 9, 50);
            let mut v = Vec::new();
            loop {
                match p.step(Some(0)) {
                    Op::Write(r, _) | Op::Read(r) => v.push(r.offset % 256),
                    Op::Compute(_) => {}
                    Op::Exit => break,
                    other => panic!("unexpected {other:?}"),
                }
            }
            v
        };
        assert_ne!(offsets(0), offsets(1), "halves must not mirror each other");
    }
}
