//! The N-site version of the worst-case application (§7.2: "This
//! application (or its N-site version) is a worst case for Mirage").
//!
//! N processes at N sites pass a token around one page: process k waits
//! for the shared word to reach a value ≡ k (mod N), then increments
//! it. Every handoff moves the page to the next site, so one page
//! circulates through the whole network — the worst case scaled up.

use mirage_sim::{
    MemRef,
    Op,
    Program,
};
use mirage_types::{
    PageNum,
    SegmentId,
};

/// One participant of the N-site token ring.
pub struct RingMember {
    token: MemRef,
    /// This member's index in the ring.
    pub index: u32,
    /// Ring size.
    pub n: u32,
    rounds: u32,
    done_rounds: u64,
    state: RingState,
    /// Spin with `yield()` (the paper's recommendation).
    pub use_yield: bool,
}

enum RingState {
    Read,
    Decide,
    Finished,
}

impl RingMember {
    /// Builds ring member `index` of `n`, running `rounds` laps over a
    /// one-page segment.
    pub fn new(seg: SegmentId, index: u32, n: u32, rounds: u32, use_yield: bool) -> Self {
        assert!(index < n && n > 0);
        Self {
            token: MemRef::new(seg, PageNum(0), 0),
            index,
            n,
            rounds,
            done_rounds: 0,
            state: RingState::Read,
            use_yield,
        }
    }
}

impl Program for RingMember {
    fn step(&mut self, last_read: Option<u32>) -> Op {
        loop {
            match self.state {
                RingState::Read => {
                    if self.done_rounds >= u64::from(self.rounds) {
                        self.state = RingState::Finished;
                        continue;
                    }
                    self.state = RingState::Decide;
                    return Op::Read(self.token);
                }
                RingState::Decide => {
                    let v = last_read.expect("read value delivered");
                    if v % self.n == self.index {
                        // Our turn: pass the token on.
                        self.done_rounds += 1;
                        self.state = RingState::Read;
                        return Op::Write(self.token, v + 1);
                    }
                    self.state = RingState::Read;
                    if self.use_yield {
                        return Op::Yield;
                    }
                    continue;
                }
                RingState::Finished => return Op::Exit,
            }
        }
    }

    fn metric(&self) -> u64 {
        self.done_rounds
    }

    fn label(&self) -> &str {
        "ring-member"
    }
}

#[cfg(test)]
mod tests {
    use mirage_types::SiteId;

    use super::*;

    #[test]
    fn member_waits_for_its_turn() {
        let seg = SegmentId::new(SiteId(0), 1);
        let mut m = RingMember::new(seg, 1, 3, 2, true);
        assert!(matches!(m.step(None), Op::Read(_)));
        // Value 0 ≡ member 0's turn: we yield.
        assert!(matches!(m.step(Some(0)), Op::Yield));
        assert!(matches!(m.step(None), Op::Read(_)));
        // Value 1 ≡ our turn: increment.
        assert!(matches!(m.step(Some(1)), Op::Write(_, 2)));
        assert_eq!(m.metric(), 1);
    }

    #[test]
    fn member_exits_after_rounds() {
        let seg = SegmentId::new(SiteId(0), 1);
        let mut m = RingMember::new(seg, 0, 2, 1, false);
        assert!(matches!(m.step(None), Op::Read(_)));
        assert!(matches!(m.step(Some(0)), Op::Write(_, 1)));
        assert!(matches!(m.step(None), Op::Exit));
    }
}
