//! The §8.0 "representative" application: two conflicting read-writers.
//!
//! "The application consists of two processes that execute for-loops
//! that decrement separate values in shared memory on the same page. The
//! loops execute for a fixed period of time until the decremented values
//! reach zero. Each time a for-loop is executed the termination
//! condition is tested. Thus, the for-loops exhibit read faults and
//! write faults."

use mirage_sim::{
    MemRef,
    Op,
    Program,
};
use mirage_types::{
    PageNum,
    SegmentId,
};

/// One conflicting read-writer.
pub struct Decrementer {
    counter: MemRef,
    initial: u32,
    state: State,
    initialized: bool,
    iterations: u64,
}

enum State {
    Read,
    Decide,
    Done,
}

impl Decrementer {
    /// A decrementer over its own `u32` at `offset` of page 0, starting
    /// from `initial`. Both processes use the *same page*, different
    /// offsets — that conflict is the point of the experiment.
    pub fn new(seg: SegmentId, offset: usize, initial: u32) -> Self {
        Self::on_page(seg, PageNum(0), offset, initial)
    }

    /// A decrementer over its own `u32` at `offset` of an arbitrary
    /// page. The range-sharded placement experiment uses this to put
    /// independent duels in different library shards of one segment.
    pub fn on_page(seg: SegmentId, page: PageNum, offset: usize, initial: u32) -> Self {
        Self {
            counter: MemRef::new(seg, page, offset),
            initial,
            state: State::Read,
            initialized: false,
            iterations: 0,
        }
    }
}

impl Program for Decrementer {
    fn step(&mut self, last_read: Option<u32>) -> Op {
        loop {
            match self.state {
                State::Read => {
                    if !self.initialized {
                        self.initialized = true;
                        // Seed the counter (the paper's setup phase).
                        return Op::Write(self.counter, self.initial);
                    }
                    self.state = State::Decide;
                    return Op::Read(self.counter);
                }
                State::Decide => {
                    let v = last_read.expect("read value delivered");
                    if v == 0 {
                        self.state = State::Done;
                        continue;
                    }
                    self.iterations += 1;
                    self.state = State::Read;
                    return Op::Write(self.counter, v - 1);
                }
                State::Done => return Op::Exit,
            }
        }
    }

    fn metric(&self) -> u64 {
        self.iterations
    }

    fn label(&self) -> &str {
        "decrementer"
    }
}

#[cfg(test)]
mod tests {
    use mirage_types::SiteId;

    use super::*;

    #[test]
    fn decrements_to_zero_then_exits() {
        let seg = SegmentId::new(SiteId(0), 1);
        let mut d = Decrementer::new(seg, 0, 2);
        assert!(matches!(d.step(None), Op::Write(_, 2)), "seed");
        assert!(matches!(d.step(None), Op::Read(_)));
        assert!(matches!(d.step(Some(2)), Op::Write(_, 1)));
        assert!(matches!(d.step(None), Op::Read(_)));
        assert!(matches!(d.step(Some(1)), Op::Write(_, 0)));
        assert!(matches!(d.step(None), Op::Read(_)));
        assert!(matches!(d.step(Some(0)), Op::Exit));
        assert_eq!(d.metric(), 2);
    }

    #[test]
    fn each_iteration_is_one_read_one_write() {
        let seg = SegmentId::new(SiteId(0), 1);
        let mut d = Decrementer::new(seg, 128, 100);
        let _ = d.step(None); // seed write
        let mut reads = 0;
        let mut writes = 0;
        let mut v = 100u32;
        loop {
            match d.step(Some(v)) {
                Op::Read(_) => reads += 1,
                Op::Write(_, nv) => {
                    writes += 1;
                    v = nv;
                }
                Op::Exit => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(reads, 101, "100 decrements + final zero test");
        assert_eq!(writes, 100);
    }
}
