//! Read-mostly sharing: many re-readers plus one periodic writer.
//!
//! Used by the invalidation-scaling ablation (A4): each write must
//! invalidate every reader's copy, and the paper notes "in a network
//! with a larger number of sites sharing pages than ours, invalidations
//! may become expensive" (§10).

use mirage_sim::{
    MemRef,
    Op,
    Program,
};
use mirage_types::{
    PageNum,
    SegmentId,
    SimDuration,
};

/// A process that re-reads one word forever (with a think time), picking
/// its copy back up after every invalidation.
pub struct Rereader {
    target: MemRef,
    think: SimDuration,
    reads_left: u32,
    reads_done: u64,
    state: u8,
}

impl Rereader {
    /// Builds a reader performing `reads` reads with `think` between.
    pub fn new(seg: SegmentId, reads: u32, think: SimDuration) -> Self {
        Self {
            target: MemRef::new(seg, PageNum(0), 0),
            think,
            reads_left: reads,
            reads_done: 0,
            state: 0,
        }
    }
}

impl Program for Rereader {
    fn step(&mut self, _last_read: Option<u32>) -> Op {
        if self.reads_left == 0 {
            return Op::Exit;
        }
        match self.state {
            0 => {
                self.state = 1;
                Op::Read(self.target)
            }
            _ => {
                self.state = 0;
                self.reads_left -= 1;
                self.reads_done += 1;
                Op::Compute(self.think)
            }
        }
    }

    fn metric(&self) -> u64 {
        self.reads_done
    }

    fn label(&self) -> &str {
        "rereader"
    }
}

/// A process that writes the shared word every `period`.
pub struct PeriodicWriter {
    target: MemRef,
    period: SimDuration,
    writes_left: u32,
    writes_done: u64,
    state: u8,
}

impl PeriodicWriter {
    /// Builds a writer performing `writes` writes, one per `period`.
    pub fn new(seg: SegmentId, writes: u32, period: SimDuration) -> Self {
        Self::on_page(seg, PageNum(0), writes, period)
    }

    /// [`PeriodicWriter::new`] aimed at an arbitrary page, so sharded
    /// experiments can drive traffic into a specific library shard.
    pub fn on_page(seg: SegmentId, page: PageNum, writes: u32, period: SimDuration) -> Self {
        Self {
            target: MemRef::new(seg, page, 0),
            period,
            writes_left: writes,
            writes_done: 0,
            state: 0,
        }
    }
}

impl Program for PeriodicWriter {
    fn step(&mut self, _last_read: Option<u32>) -> Op {
        if self.writes_left == 0 {
            return Op::Exit;
        }
        match self.state {
            0 => {
                self.state = 1;
                Op::Sleep(self.period)
            }
            _ => {
                self.state = 0;
                self.writes_left -= 1;
                self.writes_done += 1;
                Op::Write(self.target, self.writes_done as u32)
            }
        }
    }

    fn metric(&self) -> u64 {
        self.writes_done
    }

    fn label(&self) -> &str {
        "periodic-writer"
    }
}

#[cfg(test)]
mod tests {
    use mirage_types::SiteId;

    use super::*;

    #[test]
    fn rereader_alternates_read_and_think() {
        let seg = SegmentId::new(SiteId(0), 1);
        let mut r = Rereader::new(seg, 2, SimDuration::from_millis(1));
        assert!(matches!(r.step(None), Op::Read(_)));
        assert!(matches!(r.step(Some(0)), Op::Compute(_)));
        assert!(matches!(r.step(None), Op::Read(_)));
        assert!(matches!(r.step(Some(0)), Op::Compute(_)));
        assert!(matches!(r.step(None), Op::Exit));
        assert_eq!(r.metric(), 2);
    }

    #[test]
    fn writer_sleeps_then_writes() {
        let seg = SegmentId::new(SiteId(0), 1);
        let mut w = PeriodicWriter::new(seg, 1, SimDuration::from_millis(5));
        assert!(matches!(w.step(None), Op::Sleep(_)));
        assert!(matches!(w.step(None), Op::Write(_, 1)));
        assert!(matches!(w.step(None), Op::Exit));
    }
}
