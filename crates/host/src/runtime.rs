//! The host cluster: site kernel threads, app-thread views, pluggable
//! wires, and the host-driven placement loop.
//!
//! [`HostCluster::start`] keeps the original shape — one kernel thread
//! per site over the in-process channel wire. [`HostCluster::start_with`]
//! additionally selects Unix-domain sockets or TCP (the same production
//! protocol bytes over a real wire, within one process) and can run the
//! §9 placement advisor as a supervisor thread: it samples the live
//! reference log at each segment's current library site, scores per-site
//! fault counts, and issues [`Command::Migrate`] so the library role
//! chases the traffic — the host-runtime realization of the paper's
//! "library site migration is something that should be explored" (§9).

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{
    AtomicBool,
    Ordering,
};
use std::sync::mpsc::{
    channel,
    Sender,
};
use std::sync::{
    Arc,
    Mutex,
};
use std::thread::JoinHandle;
use std::time::{
    Duration,
    Instant,
};

use mirage_core::ProtocolConfig;
use mirage_net::transport::{
    BoundListener,
    ChannelNet,
    Endpoint,
    SequencedTransport,
    StreamTransport,
};
use mirage_trace::{
    PlacementAdvisor,
    RefLog,
    Registry,
};
use mirage_types::{
    PageNum,
    SegmentId,
    SimTime,
    SiteId,
};

use crate::{
    arch::STRIDE,
    fault,
    kernel::{
        kernel_main,
        Command,
        KernelCtx,
    },
    region,
};

/// Which wire carries protocol messages between the cluster's sites.
#[derive(Clone, Debug, Default)]
pub enum WireChoice {
    /// In-process `mpsc` channels (the original wire).
    #[default]
    Chan,
    /// Unix-domain sockets under the given directory (one socket file
    /// per site); `None` picks a fresh directory under the system
    /// temporary directory.
    Uds(Option<PathBuf>),
    /// TCP loopback sockets on kernel-assigned ports.
    Tcp,
}

/// Supervisor settings for the host-driven placement loop.
#[derive(Clone, Copy, Debug)]
pub struct AdvisorOpts {
    /// Minimum requests a site must contribute within one sampling
    /// window before the advisor moves the library toward it.
    pub min_requests: u64,
    /// Sampling interval.
    pub interval: Duration,
}

/// Cluster construction options.
#[derive(Clone, Debug)]
pub struct ClusterOpts {
    /// Number of sites.
    pub sites: usize,
    /// Protocol configuration (shared by every site).
    pub config: ProtocolConfig,
    /// The wire between sites.
    pub wire: WireChoice,
    /// Run the placement advisor loop (requires `config.retry`).
    pub advisor: Option<AdvisorOpts>,
}

/// One library move the advisor issued.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MigrationRecord {
    /// The segment whose library role moved.
    pub seg: SegmentId,
    /// Where the role was.
    pub from: SiteId,
    /// Where it went.
    pub to: SiteId,
    /// When the move was issued (cluster clock).
    pub at: SimTime,
    /// Requests the destination contributed within the window.
    pub requests: u64,
}

/// Global site-slot allocator: each cluster claims a contiguous block of
/// mailbox/region slots so concurrent clusters in one process (e.g. the
/// test harness) never collide.
static NEXT_SLOT: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

struct Inner {
    /// Region-table slots registered by this cluster (for cleanup).
    region_slots: Arc<Mutex<Vec<usize>>>,
    senders: Vec<Sender<Command>>,
    views: Mutex<HashMap<(usize, SegmentId), (usize, usize)>>,
    handles: Mutex<Vec<Option<JoinHandle<()>>>>,
    /// Advisor supervisor state.
    advisor_stop: AtomicBool,
    advisor_handle: Mutex<Option<JoinHandle<()>>>,
    migrations: Mutex<Vec<MigrationRecord>>,
    /// Current library site per segment, as the advisor tracks it.
    lib_sites: Mutex<HashMap<SegmentId, SiteId>>,
    start: Instant,
    next_serial: Mutex<u32>,
}

/// A running Mirage cluster on real memory.
///
/// Sites are kernel threads inside this process; application threads
/// obtain [`SegView`]s and access shared memory directly — page faults
/// drive the real protocol. The wire between sites is pluggable
/// ([`WireChoice`]); the protocol bytes are identical on all of them.
pub struct HostCluster {
    inner: Arc<Inner>,
}

impl HostCluster {
    /// Starts `n` sites with the given protocol configuration over the
    /// in-process channel wire (the original entry point).
    ///
    /// # Panics
    ///
    /// Panics if the process's site-slot space is exhausted.
    pub fn start(n: usize, config: ProtocolConfig) -> Self {
        Self::start_with(ClusterOpts {
            sites: n,
            config,
            wire: WireChoice::Chan,
            advisor: None,
        })
    }

    /// Starts a cluster with explicit wire and supervisor options.
    ///
    /// # Panics
    ///
    /// Panics if the process's site-slot space is exhausted, if a
    /// socket wire fails to bind, or if `advisor` is set without
    /// `config.retry` (handoffs lean on the retransmit chains).
    pub fn start_with(opts: ClusterOpts) -> Self {
        let ClusterOpts { sites: n, config, wire, advisor } = opts;
        assert!(
            advisor.is_none() || config.retry.is_some(),
            "the placement advisor requires retry mode (library handoffs \
             ride the retransmit chains)"
        );
        let base_slot = NEXT_SLOT.fetch_add(n, std::sync::atomic::Ordering::Relaxed);
        assert!(
            base_slot + n <= fault::MAX_SITES,
            "site-slot space exhausted (too many clusters started in this process)"
        );
        fault::install_handler();
        let transports = build_wire(&wire, n);
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel();
            senders.push(tx);
            receivers.push(rx);
        }
        let inner = Arc::new(Inner {
            region_slots: Arc::new(Mutex::new(Vec::new())),
            senders,
            views: Mutex::new(HashMap::new()),
            handles: Mutex::new(Vec::new()),
            advisor_stop: AtomicBool::new(false),
            advisor_handle: Mutex::new(None),
            migrations: Mutex::new(Vec::new()),
            lib_sites: Mutex::new(HashMap::new()),
            start: Instant::now(),
            next_serial: Mutex::new(1),
        });
        let mut handles = Vec::new();
        for (i, (transport, rx)) in transports.into_iter().zip(receivers).enumerate() {
            let ctx = KernelCtx {
                site: SiteId(i as u16),
                slot: base_slot + i,
                config: config.clone(),
                epoch: inner.start,
                region_slots: Arc::clone(&inner.region_slots),
            };
            handles.push(Some(
                std::thread::Builder::new()
                    .name(format!("mirage-site-{i}"))
                    .spawn(move || kernel_main(ctx, transport, rx))
                    .expect("spawn site thread"),
            ));
        }
        *inner.handles.lock().unwrap() = handles;
        if let Some(a) = advisor {
            let inner2 = Arc::clone(&inner);
            *inner.advisor_handle.lock().unwrap() = Some(
                std::thread::Builder::new()
                    .name("mirage-advisor".into())
                    .spawn(move || advisor_main(inner2, a))
                    .expect("spawn advisor thread"),
            );
        }
        Self { inner }
    }

    /// Elapsed real time as the protocol's clock (§9: Δ is real time).
    pub fn now(&self) -> SimTime {
        SimTime(self.inner.start.elapsed().as_nanos() as u64)
    }

    /// Creates a segment with its library (and initial pages) at `lib`,
    /// registered at every site.
    pub fn create_segment(&self, lib: usize, pages: usize) -> SegmentId {
        let serial = {
            let mut s = self.inner.next_serial.lock().unwrap();
            let v = *s;
            *s += 1;
            v
        };
        let seg = SegmentId::new(SiteId(lib as u16), serial);
        self.adopt_segment(seg, pages);
        seg
    }

    /// Registers an externally-allocated segment id (e.g. one minted by
    /// a System V [`mirage_mem::Namespace`]) at every site. The id's
    /// embedded library site receives the fully-resident creator view.
    pub fn adopt_segment(&self, seg: SegmentId, pages: usize) {
        let lib = seg.library.index();
        for (i, tx) in self.inner.senders.iter().enumerate() {
            let (ack_tx, ack_rx) = channel();
            tx.send(Command::CreateSegment { seg, pages, resident: i == lib, ack: ack_tx })
                .expect("site thread alive");
            let base = ack_rx.recv().expect("segment ack");
            self.inner.views.lock().unwrap().insert((i, seg), (base, pages));
        }
        self.inner.lib_sites.lock().unwrap().insert(seg, seg.library);
    }

    /// Number of sites in the cluster.
    pub fn sites(&self) -> usize {
        self.inner.senders.len()
    }

    /// An application view of a segment at a site. Accesses through the
    /// view take real faults and block until the protocol grants access.
    pub fn view(&self, site: usize, seg: SegmentId) -> SegView {
        let (base, pages) = *self
            .inner
            .views
            .lock()
            .unwrap()
            .get(&(site, seg))
            .expect("segment exists at site");
        SegView { base: base as *mut u8, pages }
    }

    /// Snapshot of a site's reference log (meaningful at library sites).
    /// Empty if the site has been stopped.
    pub fn ref_log(&self, site: usize) -> RefLog {
        let (tx, rx) = channel();
        if self.inner.senders[site].send(Command::RefLog(tx)).is_err() {
            return RefLog::new();
        }
        rx.recv().unwrap_or_default()
    }

    /// The merged per-site metrics registry (counters carry `s<site>.`
    /// prefixes, so the merge is deterministic and the render diffable).
    /// Stopped sites contribute nothing.
    pub fn metrics(&self) -> Registry {
        let mut merged = Registry::new();
        for tx in &self.inner.senders {
            let (ack, rx) = channel();
            if tx.send(Command::Metrics(ack)).is_ok() {
                if let Ok(reg) = rx.recv() {
                    merged.merge(&reg);
                }
            }
        }
        merged
    }

    /// A site's view of a segment's page contents, read through the
    /// kernel view (coherence checking). `None` if the site is stopped.
    pub fn snapshot(&self, site: usize, seg: SegmentId) -> Option<Vec<u8>> {
        let (tx, rx) = channel();
        self.inner.senders[site].send(Command::Snapshot(seg, tx)).ok()?;
        rx.recv().ok()
    }

    /// Manually hands a segment's library role to `to` (what the
    /// advisor loop automates). Routed to the role's current site.
    pub fn migrate(&self, seg: SegmentId, to: usize) {
        let cur =
            self.inner.lib_sites.lock().unwrap().get(&seg).copied().unwrap_or(seg.library);
        let _ = self.inner.senders[cur.index()].send(Command::Migrate {
            seg,
            to: SiteId(to as u16),
            shard: None,
        });
        self.inner.lib_sites.lock().unwrap().insert(seg, SiteId(to as u16));
    }

    /// Library moves the advisor (or [`HostCluster::migrate`]) issued.
    pub fn migrations(&self) -> Vec<MigrationRecord> {
        self.inner.migrations.lock().unwrap().clone()
    }

    /// Stops one site's kernel mid-run (poisons its fault path; peers
    /// see silence and lean on their retry chains). Idempotent.
    pub fn stop_site(&self, site: usize) {
        let _ = self.inner.senders[site].send(Command::Stop);
        if let Some(h) = self.inner.handles.lock().unwrap()[site].take() {
            let _ = h.join();
        }
    }
}

impl Drop for HostCluster {
    fn drop(&mut self) {
        self.inner.advisor_stop.store(true, Ordering::Release);
        if let Some(h) = self.inner.advisor_handle.lock().unwrap().take() {
            let _ = h.join();
        }
        for tx in &self.inner.senders {
            let _ = tx.send(Command::Stop);
        }
        for h in self.inner.handles.lock().unwrap().drain(..).flatten() {
            let _ = h.join();
        }
        // Remove this cluster's fault-routing entries so a later cluster
        // reusing the same address range never hits a stale region.
        for slot in self.inner.region_slots.lock().unwrap().drain(..) {
            region::unregister(slot);
        }
    }
}

/// Builds the chosen wire as one boxed transport per site.
fn build_wire(wire: &WireChoice, n: usize) -> Vec<Box<dyn SequencedTransport>> {
    match wire {
        WireChoice::Chan => ChannelNet::fabric(n)
            .into_iter()
            .map(|t| Box::new(t) as Box<dyn SequencedTransport>)
            .collect(),
        WireChoice::Uds(dir) => {
            let dir = dir.clone().unwrap_or_else(|| {
                static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
                std::env::temp_dir().join(format!(
                    "mirage-cluster-{}-{}",
                    std::process::id(),
                    N.fetch_add(1, Ordering::Relaxed)
                ))
            });
            std::fs::create_dir_all(&dir).expect("create socket directory");
            let eps: Vec<Endpoint> =
                (0..n).map(|i| Endpoint::Uds(dir.join(format!("site{i}.sock")))).collect();
            bind_all(&eps)
        }
        WireChoice::Tcp => {
            // Two-phase: bind everything first so kernel-assigned ports
            // are known before anyone dials.
            let listeners: Vec<BoundListener> = (0..n)
                .map(|_| {
                    BoundListener::bind(&Endpoint::Tcp("127.0.0.1:0".into()))
                        .expect("bind TCP listener")
                })
                .collect();
            let eps: Vec<Endpoint> = listeners.iter().map(|l| l.endpoint().clone()).collect();
            listeners
                .into_iter()
                .enumerate()
                .map(|(i, l)| {
                    Box::new(StreamTransport::start(SiteId(i as u16), 0, l, eps.clone()))
                        as Box<dyn SequencedTransport>
                })
                .collect()
        }
    }
}

fn bind_all(eps: &[Endpoint]) -> Vec<Box<dyn SequencedTransport>> {
    let listeners: Vec<BoundListener> =
        eps.iter().map(|ep| BoundListener::bind(ep).expect("bind listener")).collect();
    listeners
        .into_iter()
        .enumerate()
        .map(|(i, l)| {
            Box::new(StreamTransport::start(SiteId(i as u16), 0, l, eps.to_vec()))
                as Box<dyn SequencedTransport>
        })
        .collect()
}

/// The placement supervisor: every interval, pull the reference log of
/// each segment's current library site, score the *new* entries with
/// the §9 advisor, and hand the role to whichever site dominates.
fn advisor_main(inner: Arc<Inner>, opts: AdvisorOpts) {
    let advisor = PlacementAdvisor::new(opts.min_requests);
    // (segment, site) -> entries already consumed from that site's log.
    let mut marks: HashMap<(SegmentId, SiteId), usize> = HashMap::new();
    while !inner.advisor_stop.load(Ordering::Acquire) {
        std::thread::sleep(opts.interval);
        let segs: Vec<(SegmentId, SiteId)> =
            inner.lib_sites.lock().unwrap().iter().map(|(s, l)| (*s, *l)).collect();
        for (seg, lib) in segs {
            let (tx, rx) = channel();
            if inner.senders[lib.index()].send(Command::RefLog(tx)).is_err() {
                continue;
            }
            let Ok(log) = rx.recv() else { continue };
            let mark = marks.entry((seg, lib)).or_insert(0);
            let fresh: Vec<_> =
                log.entries().iter().skip(*mark).filter(|e| e.seg == seg).copied().collect();
            *mark = log.entries().len();
            for advice in advisor.advise(&fresh) {
                if advice.seg != seg || advice.to == lib {
                    continue;
                }
                let _ = inner.senders[lib.index()].send(Command::Migrate {
                    seg,
                    to: advice.to,
                    shard: None,
                });
                inner.lib_sites.lock().unwrap().insert(seg, advice.to);
                inner.migrations.lock().unwrap().push(MigrationRecord {
                    seg,
                    from: lib,
                    to: advice.to,
                    at: SimTime(inner.start.elapsed().as_nanos() as u64),
                    requests: advice.requests,
                });
            }
        }
    }
}

/// An application-side window onto a segment at one site.
///
/// DSM pages are 512 bytes placed on 4096-byte hardware pages, so the
/// byte layout is `page * STRIDE + offset` with `offset < 512`.
#[derive(Clone, Copy, Debug)]
pub struct SegView {
    base: *mut u8,
    pages: usize,
}

// SAFETY: the view is a window onto process-lifetime mappings; accesses
// are volatile raw-pointer operations and the DSM protocol provides the
// cross-thread synchronization (a page is writable at exactly one site).
unsafe impl Send for SegView {}

impl SegView {
    /// Wraps a user-view base address handed back by a kernel's
    /// segment-creation ack (crate-internal: the multi-process harness
    /// builds views without a `HostCluster`).
    pub(crate) const fn from_raw(base: *mut u8, pages: usize) -> SegView {
        SegView { base, pages }
    }

    /// Number of DSM pages in the segment.
    pub fn pages(&self) -> usize {
        self.pages
    }

    /// Loads a `u32`. May take a (handled) page fault and block until a
    /// read copy arrives.
    pub fn read_u32(&self, page: PageNum, offset: usize) -> u32 {
        assert!(page.index() < self.pages && offset + 4 <= mirage_types::PAGE_SIZE);
        // SAFETY: in-bounds volatile read of the user view; the fault
        // handler resolves protection faults before the read retires.
        unsafe {
            let p = self.base.add(page.index() * STRIDE + offset).cast::<u32>();
            core::ptr::read_volatile(p)
        }
    }

    /// Stores a `u32`. May take a (handled) page fault and block until
    /// the write copy arrives.
    pub fn write_u32(&self, page: PageNum, offset: usize, val: u32) {
        assert!(page.index() < self.pages && offset + 4 <= mirage_types::PAGE_SIZE);
        // SAFETY: in-bounds volatile write of the user view; see
        // `read_u32`.
        unsafe {
            let p = self.base.add(page.index() * STRIDE + offset).cast::<u32>();
            core::ptr::write_volatile(p, val);
        }
    }
}
