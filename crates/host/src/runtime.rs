//! The host cluster: site kernel threads, app-thread views, and the
//! in-process wire.

use std::collections::{
    BinaryHeap,
    HashMap,
};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{
    Duration,
    Instant,
};

use mirage_core::{
    DriverOps,
    Event,
    PageStore,
    ProtoMsg,
    ProtocolConfig,
    ProtocolDriver,
    RefLogEntry,
};
use mirage_net::wire::{
    from_bytes,
    to_bytes,
};
use mirage_trace::{
    Entry,
    RefLog,
};
use mirage_types::{
    Access,
    PageNum,
    PageProt,
    Pid,
    SegmentId,
    SimTime,
    SiteId,
};
use std::sync::mpsc::{
    channel,
    Receiver,
    Sender,
};
use std::sync::Mutex;

use crate::{
    arch::STRIDE,
    fault::{
        self,
        GRANTED,
        IN_SERVICE,
        MAILBOXES,
        POSTED,
        SLOTS_PER_SITE,
    },
    region,
    store::HostStore,
};

/// Messages to a site's kernel thread.
enum KMsg {
    /// An encoded protocol message from another site.
    Wire { from: SiteId, bytes: Vec<u8> },
    /// Create a segment locally; reply with the user-view base address.
    CreateSegment { seg: SegmentId, pages: usize, resident: bool, ack: Sender<usize> },
    /// Shut down.
    Stop,
}

/// Global site-slot allocator: each cluster claims a contiguous block of
/// mailbox/region slots so concurrent clusters in one process (e.g. the
/// test harness) never collide.
static NEXT_SLOT: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

struct Inner {
    /// First global site slot of this cluster.
    base_slot: usize,
    /// Region-table slots registered by this cluster (for cleanup).
    region_slots: Mutex<Vec<usize>>,
    senders: Vec<Sender<KMsg>>,
    views: Mutex<HashMap<(usize, SegmentId), (usize, usize)>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// Aggregated library reference logs (§9), one per site.
    ref_logs: Vec<Mutex<RefLog>>,
    start: Instant,
    next_serial: Mutex<u32>,
}

/// A running Mirage cluster on real memory.
///
/// Sites are kernel threads inside this process; application threads
/// obtain [`SegView`]s and access shared memory directly — page faults
/// drive the real protocol.
pub struct HostCluster {
    inner: Arc<Inner>,
}

impl HostCluster {
    /// Starts `n` sites with the given protocol configuration.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds [`fault::MAX_SITES`].
    pub fn start(n: usize, config: ProtocolConfig) -> Self {
        let base_slot = NEXT_SLOT.fetch_add(n, std::sync::atomic::Ordering::Relaxed);
        assert!(
            base_slot + n <= fault::MAX_SITES,
            "site-slot space exhausted (too many clusters started in this process)"
        );
        fault::install_handler();
        let channels: Vec<(Sender<KMsg>, Receiver<KMsg>)> = (0..n).map(|_| channel()).collect();
        let senders: Vec<_> = channels.iter().map(|(s, _)| s.clone()).collect();
        let inner = Arc::new(Inner {
            base_slot,
            region_slots: Mutex::new(Vec::new()),
            senders: senders.clone(),
            views: Mutex::new(HashMap::new()),
            handles: Mutex::new(Vec::new()),
            ref_logs: (0..n).map(|_| Mutex::new(RefLog::new())).collect(),
            start: Instant::now(),
            next_serial: Mutex::new(1),
        });
        let mut handles = Vec::new();
        for (i, (_, rx)) in channels.into_iter().enumerate() {
            let inner2 = Arc::clone(&inner);
            let cfg = config.clone();
            let all_senders = senders.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("mirage-site-{i}"))
                    .spawn(move || kernel_main(i, cfg, rx, all_senders, inner2))
                    .expect("spawn site thread"),
            );
        }
        *inner.handles.lock().unwrap() = handles;
        Self { inner }
    }

    /// Elapsed real time as the protocol's clock (§9: Δ is real time).
    pub fn now(&self) -> SimTime {
        SimTime(self.inner.start.elapsed().as_nanos() as u64)
    }

    /// Creates a segment with its library (and initial pages) at `lib`,
    /// registered at every site.
    pub fn create_segment(&self, lib: usize, pages: usize) -> SegmentId {
        let serial = {
            let mut s = self.inner.next_serial.lock().unwrap();
            let v = *s;
            *s += 1;
            v
        };
        let seg = SegmentId::new(SiteId(lib as u16), serial);
        self.adopt_segment(seg, pages);
        seg
    }

    /// Registers an externally-allocated segment id (e.g. one minted by
    /// a System V [`mirage_mem::Namespace`]) at every site. The id's
    /// embedded library site receives the fully-resident creator view.
    pub fn adopt_segment(&self, seg: SegmentId, pages: usize) {
        let lib = seg.library.index();
        for (i, tx) in self.inner.senders.iter().enumerate() {
            let (ack_tx, ack_rx) = channel();
            tx.send(KMsg::CreateSegment { seg, pages, resident: i == lib, ack: ack_tx })
                .expect("site thread alive");
            let base = ack_rx.recv().expect("segment ack");
            self.inner.views.lock().unwrap().insert((i, seg), (base, pages));
        }
    }

    /// Number of sites in the cluster.
    pub fn sites(&self) -> usize {
        self.inner.senders.len()
    }

    /// An application view of a segment at a site. Accesses through the
    /// view take real faults and block until the protocol grants access.
    pub fn view(&self, site: usize, seg: SegmentId) -> SegView {
        let (base, pages) = *self
            .inner
            .views
            .lock()
            .unwrap()
            .get(&(site, seg))
            .expect("segment exists at site");
        SegView { base: base as *mut u8, pages }
    }

    /// Snapshot of a site's reference log (meaningful at library sites).
    pub fn ref_log(&self, site: usize) -> RefLog {
        self.inner.ref_logs[site].lock().unwrap().clone()
    }
}

impl Drop for HostCluster {
    fn drop(&mut self) {
        for tx in &self.inner.senders {
            let _ = tx.send(KMsg::Stop);
        }
        for h in self.inner.handles.lock().unwrap().drain(..) {
            let _ = h.join();
        }
        // Remove this cluster's fault-routing entries so a later cluster
        // reusing the same address range never hits a stale region.
        for slot in self.inner.region_slots.lock().unwrap().drain(..) {
            region::unregister(slot);
        }
    }
}

/// An application-side window onto a segment at one site.
///
/// DSM pages are 512 bytes placed on 4096-byte hardware pages, so the
/// byte layout is `page * STRIDE + offset` with `offset < 512`.
#[derive(Clone, Copy, Debug)]
pub struct SegView {
    base: *mut u8,
    pages: usize,
}

// SAFETY: the view is a window onto process-lifetime mappings; accesses
// are volatile raw-pointer operations and the DSM protocol provides the
// cross-thread synchronization (a page is writable at exactly one site).
unsafe impl Send for SegView {}

impl SegView {
    /// Number of DSM pages in the segment.
    pub fn pages(&self) -> usize {
        self.pages
    }

    /// Loads a `u32`. May take a (handled) page fault and block until a
    /// read copy arrives.
    pub fn read_u32(&self, page: PageNum, offset: usize) -> u32 {
        assert!(page.index() < self.pages && offset + 4 <= mirage_types::PAGE_SIZE);
        // SAFETY: in-bounds volatile read of the user view; the fault
        // handler resolves protection faults before the read retires.
        unsafe {
            let p = self.base.add(page.index() * STRIDE + offset).cast::<u32>();
            core::ptr::read_volatile(p)
        }
    }

    /// Stores a `u32`. May take a (handled) page fault and block until
    /// the write copy arrives.
    pub fn write_u32(&self, page: PageNum, offset: usize, val: u32) {
        assert!(page.index() < self.pages && offset + 4 <= mirage_types::PAGE_SIZE);
        // SAFETY: in-bounds volatile write of the user view; see
        // `read_u32`.
        unsafe {
            let p = self.base.add(page.index() * STRIDE + offset).cast::<u32>();
            core::ptr::write_volatile(p, val);
        }
    }
}

/// A pending engine timer.
struct TimerEnt(SimTime, u64);
impl PartialEq for TimerEnt {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0 && self.1 == other.1
    }
}
impl Eq for TimerEnt {}
impl PartialOrd for TimerEnt {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEnt {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap and we want earliest-first.
        (other.0, other.1).cmp(&(self.0, self.1))
    }
}

/// [`DriverOps`] receiver for a host kernel thread: sends become wire
/// bytes on the peer channels, wakes flip the faulting thread's mailbox
/// slot, timers join the thread-local heap, and log records land in the
/// shared reference log.
struct HostOps<'a> {
    site: SiteId,
    site_idx: usize,
    timers: &'a mut BinaryHeap<TimerEnt>,
    senders: &'a [Sender<KMsg>],
    inner: &'a Inner,
}

impl DriverOps for HostOps<'_> {
    fn send(&mut self, to: SiteId, msg: ProtoMsg) {
        let bytes = to_bytes(&msg);
        // A dead peer during shutdown is fine.
        let _ = self.senders[to.index()].send(KMsg::Wire { from: self.site, bytes });
    }

    fn wake(&mut self, pid: Pid) {
        let slot = &MAILBOXES[self.inner.base_slot + self.site_idx][(pid.local as usize) - 1];
        // Only wake a slot this site put in service; stale wakes for
        // recycled slots are ignored by the CAS.
        let _ = slot.state.compare_exchange(
            IN_SERVICE,
            GRANTED,
            Ordering::AcqRel,
            Ordering::Relaxed,
        );
    }

    fn set_timer(&mut self, at: SimTime, token: u64) {
        self.timers.push(TimerEnt(at, token));
    }

    fn log(&mut self, e: RefLogEntry) {
        self.inner.ref_logs[self.site_idx].lock().unwrap().record(Entry {
            seg: e.seg,
            page: e.page,
            at: e.at,
            pid: e.pid,
            access: e.access,
        });
    }
}

fn kernel_main(
    site_idx: usize,
    config: ProtocolConfig,
    rx: Receiver<KMsg>,
    senders: Vec<Sender<KMsg>>,
    inner: Arc<Inner>,
) {
    let site = SiteId(site_idx as u16);
    let slot = inner.base_slot + site_idx;
    let mut driver = ProtocolDriver::from_config(site, config);
    let mut store = HostStore::new();
    let mut timers: BinaryHeap<TimerEnt> = BinaryHeap::new();
    let now = |inner: &Inner| SimTime(inner.start.elapsed().as_nanos() as u64);

    loop {
        // Fire due timers.
        let t_now = now(&inner);
        while timers.peek().map(|t| t.0 <= t_now).unwrap_or(false) {
            let TimerEnt(_, token) = timers.pop().expect("peeked");
            driver.drive(
                Event::Timer { token },
                t_now,
                &mut store,
                &mut HostOps {
                    site,
                    site_idx,
                    timers: &mut timers,
                    senders: &senders,
                    inner: &inner,
                },
            );
        }
        // Service posted faults.
        #[allow(clippy::needless_range_loop)] // `slot` shadows the block index below.
        for slot_idx in 0..SLOTS_PER_SITE {
            let slot = &MAILBOXES[slot][slot_idx];
            if slot
                .state
                .compare_exchange(POSTED, IN_SERVICE, Ordering::AcqRel, Ordering::Relaxed)
                .is_err()
            {
                continue;
            }
            let addr = slot.addr.load(Ordering::Relaxed);
            let hw_write = slot.write.load(Ordering::Relaxed) == 1;
            let Some(hit) = region::lookup(addr) else {
                // Region vanished (segment destroyed mid-fault); let the
                // app retry and crash honestly.
                slot.state.store(GRANTED, Ordering::Release);
                continue;
            };
            let page = PageNum((hit.offset / STRIDE) as u32);
            // Typed fault: the x86-64 error-code bit; on other
            // architectures infer from the current protection (a fault
            // on a readable page must be a write).
            let access = if hw_write || store.prot(hit.seg, page) == PageProt::Read {
                Access::Write
            } else {
                Access::Read
            };
            let pid = Pid::new(site, (slot_idx + 1) as u32);
            let t = now(&inner);
            driver.drive(
                Event::Fault { pid, seg: hit.seg, page, access },
                t,
                &mut store,
                &mut HostOps {
                    site,
                    site_idx,
                    timers: &mut timers,
                    senders: &senders,
                    inner: &inner,
                },
            );
        }
        // Wait briefly for wire traffic or commands.
        match rx.recv_timeout(Duration::from_micros(500)) {
            Ok(KMsg::Wire { from, bytes }) => {
                let msg: ProtoMsg = from_bytes(&bytes).expect("peer sent valid wire data");
                let t = now(&inner);
                driver.drive(
                    Event::Deliver { from, msg },
                    t,
                    &mut store,
                    &mut HostOps {
                        site,
                        site_idx,
                        timers: &mut timers,
                        senders: &senders,
                        inner: &inner,
                    },
                );
            }
            Ok(KMsg::CreateSegment { seg, pages, resident, ack }) => {
                store.add_segment(seg, pages, resident);
                driver.register_segment(seg, pages);
                let base = store.mapping(seg).expect("just added").user_base() as usize;
                let rslot = region::register(base, pages * STRIDE, slot, seg);
                inner.region_slots.lock().unwrap().push(rslot);
                let _ = ack.send(base);
            }
            Ok(KMsg::Stop) => return,
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {}
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}
