//! One site as one OS process: the `mirage-site` binary's engine room.
//!
//! A site process reads the cluster [`crate::manifest::Manifest`],
//! binds its socket endpoint, runs [`crate::kernel::kernel_main`] on a
//! kernel thread — taking real `SIGSEGV` faults against its own mapped
//! region, exactly like the in-process runtime — and obeys a line-based
//! control protocol on a private Unix socket so the launcher can start
//! the workload, wait for completion, read back a coherence checksum,
//! pull metrics, drive a migration, and shut the process down.
//!
//! Control protocol (one UTF-8 line per message):
//!
//! | launcher → site            | site → launcher                      |
//! |----------------------------|--------------------------------------|
//! | (connect)                  | `ready`                              |
//! | `start`                    | `started`                            |
//! | `wait`                     | `done` (blocks until workload ends)  |
//! | `readback`                 | `sum <hex>` (protocol-read checksum) |
//! | `metrics`                  | `metrics <escaped render>`           |
//! | `migrate <lib> <ser> <to>` | `ok`                                 |
//! | `exit`                     | `bye`, then the process exits 0      |
//!
//! A kill -9 needs no protocol: the control connection breaks, the
//! launcher respawns with `--incarnation +1`, and the bumped handshake
//! severs the dead process's circuits at every peer.

use std::io::{
    BufRead,
    BufReader,
    Write,
};
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::mpsc::{
    channel,
    Sender,
};
use std::sync::{
    Arc,
    Mutex,
};
use std::time::Instant;

use mirage_net::transport::{
    BoundListener,
    StreamTransport,
};
use mirage_types::{
    SegmentId,
    SiteId,
};

use crate::fault;
use crate::kernel::{
    kernel_main,
    Command,
    KernelCtx,
};
use crate::manifest::{
    Manifest,
    Workload,
};
use crate::runtime::SegView;
use crate::workload;

/// Parsed `mirage-site` command line.
struct Args {
    manifest: PathBuf,
    site: usize,
    incarnation: u64,
    control: PathBuf,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut manifest = None;
    let mut site = None;
    let mut incarnation = 1u64;
    let mut control = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = || it.next().ok_or(format!("{a} needs a value"));
        match a.as_str() {
            "--manifest" => manifest = Some(PathBuf::from(val()?)),
            "--site" => site = Some(val()?.parse().map_err(|e| format!("--site: {e}"))?),
            "--incarnation" => {
                incarnation = val()?.parse().map_err(|e| format!("--incarnation: {e}"))?;
            }
            "--control" => control = Some(PathBuf::from(val()?)),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(Args {
        manifest: manifest.ok_or("--manifest is required")?,
        site: site.ok_or("--site is required")?,
        incarnation,
        control: control.ok_or("--control is required")?,
    })
}

/// The deterministic segment id of the manifest's `k`-th segment (the
/// same id every member process computes).
pub fn segment_id(m: &Manifest, k: usize) -> SegmentId {
    SegmentId::new(SiteId(m.segments[k].lib as u16), (k + 1) as u32)
}

/// Runs this site's share of the manifest workload.
fn run_workload(m: &Manifest, site: usize, views: &[SegView]) {
    for view in views {
        match m.workload {
            Workload::Fill { rounds } => workload::fill(view, site, m.sites, rounds),
            Workload::Readers { target } => {
                if site == 0 {
                    workload::readers_writer(view, target);
                } else {
                    workload::readers_reader(view, target);
                }
            }
        }
    }
}

/// The `mirage-site` entry point. Returns the process exit code.
pub fn site_main(argv: Vec<String>) -> i32 {
    match site_run(&argv) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("mirage-site: {e}");
            2
        }
    }
}

fn site_run(argv: &[String]) -> Result<(), String> {
    let args = parse_args(argv)?;
    let m = Manifest::load(&args.manifest)?;
    if args.site >= m.sites {
        return Err(format!("site {} out of range (sites {})", args.site, m.sites));
    }
    let site = SiteId(args.site as u16);

    // Bind the control socket before anything slow, so the launcher's
    // connect-retry loop has a target as early as possible.
    let _ = std::fs::remove_file(&args.control);
    let control = UnixListener::bind(&args.control)
        .map_err(|e| format!("bind control {}: {e}", args.control.display()))?;

    fault::install_handler();
    let listener = BoundListener::bind(&m.endpoints[args.site])
        .map_err(|e| format!("bind {}: {e}", m.endpoints[args.site]))?;
    let transport =
        StreamTransport::start(site, args.incarnation, listener, m.endpoints.clone());
    let (cmd_tx, cmd_rx) = channel::<Command>();
    let ctx = KernelCtx {
        site,
        // This process hosts exactly one site: row 0 of its own mailbox
        // table.
        slot: 0,
        config: m.protocol_config(),
        epoch: Instant::now(),
        region_slots: Arc::new(Mutex::new(Vec::new())),
    };
    let kernel = std::thread::Builder::new()
        .name(format!("mirage-site-{}", args.site))
        .spawn(move || kernel_main(ctx, Box::new(transport), cmd_rx))
        .map_err(|e| format!("spawn kernel: {e}"))?;

    // Create every manifest segment; the library site gets the resident
    // creator view.
    let mut views = Vec::new();
    for k in 0..m.segments.len() {
        let seg = segment_id(&m, k);
        let (ack_tx, ack_rx) = channel();
        cmd_tx
            .send(Command::CreateSegment {
                seg,
                pages: m.segments[k].pages,
                resident: m.segments[k].lib == args.site,
                ack: ack_tx,
            })
            .map_err(|_| "kernel died during setup".to_string())?;
        let base = ack_rx.recv().map_err(|_| "kernel died during setup".to_string())?;
        views.push(SegView::from_raw(base as *mut u8, m.segments[k].pages));
    }

    // Serve the launcher.
    let (stream, _) = control.accept().map_err(|e| format!("accept control: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| format!("clone control: {e}"))?;
    let mut reader = BufReader::new(stream);
    let send = |w: &mut dyn Write, line: &str| -> Result<(), String> {
        w.write_all(line.as_bytes())
            .and_then(|()| w.write_all(b"\n"))
            .map_err(|e| format!("control write: {e}"))
    };
    send(&mut writer, "ready")?;

    let mut workload_handle: Option<std::thread::JoinHandle<()>> = None;
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break, // launcher vanished: shut down
            Ok(_) => {}
            Err(e) => return Err(format!("control read: {e}")),
        }
        let line = line.trim().to_string();
        let mut words = line.split_whitespace();
        match words.next() {
            Some("start") => {
                let m2 = m.clone();
                let views2 = views.clone();
                let site_idx = args.site;
                workload_handle = Some(
                    std::thread::Builder::new()
                        .name("mirage-app".into())
                        .spawn(move || run_workload(&m2, site_idx, &views2))
                        .map_err(|e| format!("spawn workload: {e}"))?,
                );
                send(&mut writer, "started")?;
            }
            Some("wait") => {
                if let Some(h) = workload_handle.take() {
                    h.join().map_err(|_| "workload panicked".to_string())?;
                }
                send(&mut writer, "done")?;
            }
            Some("readback") => {
                let mut sums = Vec::new();
                for view in &views {
                    sums.push(workload::readback_sum(view));
                }
                let combined = sums.iter().fold(0u64, |a, s| a ^ s.rotate_left(17));
                send(&mut writer, &format!("sum {combined:016x}"))?;
            }
            Some("metrics") => {
                let (tx, rx) = channel();
                let text = if cmd_tx.send(Command::Metrics(tx)).is_ok() {
                    rx.recv().map(|r| r.render()).unwrap_or_default()
                } else {
                    String::new()
                };
                send(&mut writer, &format!("metrics {}", text.replace('\n', "|")))?;
            }
            Some("migrate") => {
                let parse3 =
                    |w: &mut std::str::SplitWhitespace<'_>| -> Option<(u16, u32, u16)> {
                        Some((
                            w.next()?.parse().ok()?,
                            w.next()?.parse().ok()?,
                            w.next()?.parse().ok()?,
                        ))
                    };
                match parse3(&mut words) {
                    Some((lib, serial, to)) => {
                        let seg = SegmentId::new(SiteId(lib), serial);
                        let _ =
                            cmd_tx.send(Command::Migrate { seg, to: SiteId(to), shard: None });
                        send(&mut writer, "ok")?;
                    }
                    None => send(&mut writer, "err bad migrate")?,
                }
            }
            Some("exit") => {
                send(&mut writer, "bye")?;
                break;
            }
            Some(other) => send(&mut writer, &format!("err unknown command {other}"))?,
            None => {}
        }
    }

    shutdown(cmd_tx, kernel);
    let _ = std::fs::remove_file(&args.control);
    Ok(())
}

fn shutdown(cmd_tx: Sender<Command>, kernel: std::thread::JoinHandle<()>) {
    let _ = cmd_tx.send(Command::Stop);
    let _ = kernel.join();
    // Region entries and mailbox rows die with the process.
}
