//! `mirage-site`: one Mirage DSM site as one OS process.
//!
//! ```text
//! mirage-site --manifest <file> --site <i> [--incarnation <k>] --control <sock>
//! ```
//!
//! See `mirage_host::proc` for the control protocol and
//! `mirage_host::manifest` for the manifest format.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(mirage_host::proc::site_main(argv));
}
