//! `mirage-cluster`: launch an N-process Mirage DSM cluster over real
//! sockets, run a workload, verify cross-site coherence, and report.
//!
//! ```text
//! mirage-cluster [--sites 3] [--wire uds|tcp] [--pages 4] [--delta 1]
//!                [--workload fill|readers] [--rounds 6] [--target 40]
//!                [--kill <site> --kill-after-ms 400 --restart-after-ms 200]
//!                [--site-bin <path>] [--dir <scratch>]
//! ```
//!
//! `--site-bin` defaults to the `mirage-site` binary next to this
//! executable (the Cargo target directory layout).

use std::path::PathBuf;
use std::time::Duration;

use mirage_host::launcher::{
    run_cluster,
    KillPlan,
    LaunchOpts,
};
use mirage_host::manifest::{
    Manifest,
    SegmentSpec,
    Workload,
};
use mirage_net::transport::{
    BoundListener,
    Endpoint,
};

fn parse<T: std::str::FromStr>(v: Option<String>, what: &str) -> T {
    v.and_then(|s| s.parse().ok()).unwrap_or_else(|| panic!("bad or missing value for {what}"))
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut sites = 3usize;
    let mut wire = "uds".to_string();
    let mut pages = 4usize;
    let mut delta = 1u32;
    let mut workload = "fill".to_string();
    let mut rounds = 6u32;
    let mut target = 40u32;
    let mut kill: Option<usize> = None;
    let mut kill_after_ms = 400u64;
    let mut restart_after_ms: Option<u64> = Some(200);
    let mut site_bin: Option<PathBuf> = None;
    let mut dir: Option<PathBuf> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--sites" => sites = parse(args.next(), "--sites"),
            "--wire" => wire = parse(args.next(), "--wire"),
            "--pages" => pages = parse(args.next(), "--pages"),
            "--delta" => delta = parse(args.next(), "--delta"),
            "--workload" => workload = parse(args.next(), "--workload"),
            "--rounds" => rounds = parse(args.next(), "--rounds"),
            "--target" => target = parse(args.next(), "--target"),
            "--kill" => kill = Some(parse(args.next(), "--kill")),
            "--kill-after-ms" => kill_after_ms = parse(args.next(), "--kill-after-ms"),
            "--restart-after-ms" => {
                restart_after_ms = Some(parse(args.next(), "--restart-after-ms"))
            }
            "--no-restart" => restart_after_ms = None,
            "--site-bin" => {
                site_bin = Some(PathBuf::from(args.next().expect("--site-bin path")))
            }
            "--dir" => dir = Some(PathBuf::from(args.next().expect("--dir path"))),
            other => panic!("unknown argument: {other}"),
        }
    }

    let dir = dir.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("mirage-cluster-{}", std::process::id()))
    });
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let site_bin = site_bin.unwrap_or_else(|| {
        let me = std::env::current_exe().expect("current exe");
        me.parent().expect("exe dir").join("mirage-site")
    });

    let endpoints: Vec<Endpoint> = match wire.as_str() {
        "uds" => (0..sites).map(|i| Endpoint::Uds(dir.join(format!("site{i}.sock")))).collect(),
        "tcp" => (0..sites)
            .map(|_| {
                // Bind-then-drop to reserve a concrete port for the
                // manifest; the site process re-binds it.
                let l = BoundListener::bind(&Endpoint::Tcp("127.0.0.1:0".into()))
                    .expect("probe TCP port");
                l.endpoint().clone()
            })
            .collect(),
        other => panic!("unknown wire {other:?} (uds|tcp)"),
    };
    let workload = match workload.as_str() {
        "fill" => Workload::Fill { rounds },
        "readers" => Workload::Readers { target },
        other => panic!("unknown workload {other:?} (fill|readers)"),
    };
    let manifest = Manifest {
        sites,
        endpoints,
        delta_ticks: delta,
        retry: true,
        segments: vec![SegmentSpec { lib: 0, pages }],
        workload,
    };
    let opts = LaunchOpts {
        manifest,
        dir,
        site_bin,
        kill: kill.map(|site| KillPlan {
            site,
            after: Duration::from_millis(kill_after_ms),
            restart_after: restart_after_ms.map(Duration::from_millis),
        }),
        deadline: Duration::from_secs(120),
    };

    match run_cluster(&opts) {
        Ok(report) => {
            println!("# mirage-cluster report");
            for s in &report.sites {
                println!(
                    "site {}: incarnation {} exit {:?} killed {} sum {}",
                    s.site,
                    s.incarnation,
                    s.exit,
                    s.killed,
                    s.sum.map(|v| format!("{v:016x}")).unwrap_or_else(|| "-".into()),
                );
            }
            println!("coherent: {}", report.coherent);
            println!("\n## merged metrics\n{}", report.metrics);
            std::process::exit(i32::from(!report.coherent));
        }
        Err(e) => {
            eprintln!("mirage-cluster: {e}");
            std::process::exit(2);
        }
    }
}
