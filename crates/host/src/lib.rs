//! The real-memory Mirage runtime: genuine MMU faults, genuine unsafe
//! fault handling.
//!
//! The paper's prototype lives in the Locus kernel and fields real VAX
//! page faults, reading a hardware bit to distinguish read from write
//! faults ("We have modified the interrupt service routine assembly code
//! to examine the VAX hardware bit that indicates the fault type",
//! §6.2). This crate reproduces that layer in user space on Linux:
//!
//! * every *site* is a kernel thread plus any number of application
//!   threads inside one OS process;
//! * each (site, segment) pair has **two mappings of the same memory**
//!   (a `memfd` mapped twice): a *user view* whose per-page protection
//!   is driven by the protocol (`mprotect`), and an always-writable
//!   *kernel view* the protocol engine uses to move page data;
//! * application accesses to the user view take real `SIGSEGV`s; the
//!   signal handler classifies the fault with the **write bit of the
//!   x86-64 page-fault error code** (the direct analogue of the paper's
//!   VAX bit), posts a fault record, and spins until the protocol
//!   grants access;
//! * sites exchange the `mirage-core` wire messages (encoded with the
//!   real codec) over in-process channels; Δ windows run on real time,
//!   as in the paper (§9: "In Mirage Δ is measured using real-time").
//!
//! Because `mprotect` granularity is the hardware page (4096 bytes here)
//! while Mirage's DSM page is 512 bytes, each DSM page is placed on its
//! own hardware page (a 4096-byte stride); the protocol engine is used
//! unchanged. This substitution is documented in `DESIGN.md`.
//!
//! All `unsafe` code is confined to [`arch`], [`region`], [`fault`],
//! and the raw syscall bindings in [`sys`], each block carrying a
//! `// SAFETY:` justification.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arch;
pub mod fault;
pub mod kernel;
pub mod launcher;
pub mod manifest;
pub mod proc;
pub mod region;
pub mod runtime;
pub mod store;
pub mod sys;
pub mod sysv;
pub mod workload;

pub use runtime::{
    AdvisorOpts,
    ClusterOpts,
    HostCluster,
    MigrationRecord,
    SegView,
    WireChoice,
};
pub use sysv::SysV;
