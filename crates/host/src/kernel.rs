//! The site kernel: one protocol engine serviced by one loop, fed by
//! real faults, a sequenced transport, and a command channel.
//!
//! This is the piece `crates/host` shares between its two deployment
//! shapes. In-process clusters ([`crate::runtime::HostCluster`]) run one
//! [`kernel_main`] thread per site over the channel transport; the
//! `mirage-site` binary runs exactly one per OS process over a socket
//! transport. Either way the loop is the same: fire due timers, service
//! posted `SIGSEGV` faults, apply host commands, and deliver wire
//! frames — the host-runtime analogue of the paper's interrupt-driven
//! kernel path (§6).
//!
//! On its way out — commanded stop or transport closure — the kernel
//! *poisons* its site: every page of every local segment is opened
//! read-write, the site's poison flag is raised, and every in-flight
//! fault slot is granted. An application thread parked in the fault
//! handler therefore always resumes (its retried access succeeds
//! against the opened pages), so cluster teardown can never deadlock on
//! a dead site's grant.

use std::collections::BinaryHeap;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{
    Receiver,
    Sender,
    TryRecvError,
};
use std::sync::{
    Arc,
    Mutex,
};
use std::time::{
    Duration,
    Instant,
};

use mirage_core::{
    DriverOps,
    Event,
    PageStore,
    ProtoMsg,
    ProtocolConfig,
    ProtocolDriver,
    RefLogEntry,
};
use mirage_net::transport::{
    SequencedTransport,
    TransportEvent,
};
use mirage_net::wire::{
    from_bytes,
    to_bytes,
};
use mirage_trace::{
    Entry,
    RefLog,
    Registry,
    TraceEvent,
};
use mirage_types::{
    Access,
    PageNum,
    PageProt,
    Pid,
    SegmentId,
    SimTime,
    SiteId,
};

use crate::{
    arch::STRIDE,
    fault::{
        self,
        GRANTED,
        IN_SERVICE,
        MAILBOXES,
        POSTED,
        SLOTS_PER_SITE,
    },
    region,
    store::HostStore,
};

/// Host-side commands to a running kernel.
pub enum Command {
    /// Create a segment locally; reply with the user-view base address.
    CreateSegment {
        /// The segment id (its embedded library site decides residency
        /// elsewhere; `resident` decides it here).
        seg: SegmentId,
        /// DSM pages in the segment.
        pages: usize,
        /// Whether this site starts with the fully-resident creator view.
        resident: bool,
        /// Reply channel for the user-view base address.
        ack: Sender<usize>,
    },
    /// Drive [`Event::MigrateLibrary`]: hand the library role to `to`.
    Migrate {
        /// Segment whose library role moves.
        seg: SegmentId,
        /// Destination site.
        to: SiteId,
        /// Page-range shard to move (`None` = every local shard).
        shard: Option<u32>,
    },
    /// Reply with a snapshot of this site's reference log (§9).
    RefLog(Sender<RefLog>),
    /// Reply with this site's metrics registry (counters carry an
    /// `s<site>.` prefix so per-site registries merge deterministically).
    Metrics(Sender<Registry>),
    /// Reply with the segment's page contents, read through the kernel
    /// view (coherence checking; `pages * PAGE_SIZE` bytes).
    Snapshot(SegmentId, Sender<Vec<u8>>),
    /// Shut down (poisons the site on the way out).
    Stop,
}

/// Everything a kernel needs besides its transport and command channel.
pub struct KernelCtx {
    /// This site.
    pub site: SiteId,
    /// The site's row in the fault mailboxes / poison table.
    pub slot: usize,
    /// Protocol configuration.
    pub config: ProtocolConfig,
    /// Cluster epoch: `SimTime` is nanoseconds since this instant (§9:
    /// Δ is real time).
    pub epoch: Instant,
    /// Where to record region-table slots for later cleanup.
    pub region_slots: Arc<Mutex<Vec<usize>>>,
}

/// A pending engine timer (earliest-first in the heap).
struct TimerEnt(SimTime, u64);
impl PartialEq for TimerEnt {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0 && self.1 == other.1
    }
}
impl Eq for TimerEnt {}
impl PartialOrd for TimerEnt {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEnt {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap and we want earliest-first.
        (other.0, other.1).cmp(&(self.0, self.1))
    }
}

/// [`DriverOps`] receiver for a kernel: sends become frames on the
/// transport, wakes flip the faulting thread's mailbox slot, timers
/// join the local heap, log records land in the site's reference log,
/// and trace events tick the per-kind metrics counters.
struct KernelOps<'a> {
    slot: usize,
    timers: &'a mut BinaryHeap<TimerEnt>,
    transport: &'a mut dyn SequencedTransport,
    ref_log: &'a mut RefLog,
    metrics: &'a mut Registry,
    prefix: &'a str,
}

impl DriverOps for KernelOps<'_> {
    fn send(&mut self, to: SiteId, msg: ProtoMsg) {
        let bytes = to_bytes(&msg);
        self.metrics.add(&format!("{}send.msgs", self.prefix), 1);
        self.transport.send(to, &bytes);
    }

    fn wake(&mut self, pid: Pid) {
        let slot = &MAILBOXES[self.slot][(pid.local as usize) - 1];
        // Only wake a slot this site put in service; stale wakes for
        // recycled slots are ignored by the CAS.
        let _ = slot.state.compare_exchange(
            IN_SERVICE,
            GRANTED,
            Ordering::AcqRel,
            Ordering::Relaxed,
        );
    }

    fn set_timer(&mut self, at: SimTime, token: u64) {
        self.timers.push(TimerEnt(at, token));
    }

    fn log(&mut self, e: RefLogEntry) {
        self.ref_log.record(Entry {
            seg: e.seg,
            page: e.page,
            at: e.at,
            pid: e.pid,
            access: e.access,
        });
    }

    fn trace(&mut self, ev: TraceEvent) {
        self.metrics.add(&format!("{}proto.{:?}", self.prefix, ev.kind), 1);
    }
}

/// The kernel loop. Returns when commanded to stop or when the
/// transport closes; either way the site is poisoned first (pages
/// opened, slots granted) so parked application threads always resume.
pub fn kernel_main(
    ctx: KernelCtx,
    mut transport: Box<dyn SequencedTransport>,
    cmds: Receiver<Command>,
) {
    let KernelCtx { site, slot, config, epoch, region_slots } = ctx;
    debug_assert_eq!(transport.site(), site);
    let prefix = format!("s{}.", site.0);
    let mut driver = ProtocolDriver::from_config(site, config);
    let mut store = HostStore::new();
    let mut timers: BinaryHeap<TimerEnt> = BinaryHeap::new();
    let mut ref_log = RefLog::new();
    let mut metrics = Registry::new();
    let now = || SimTime(epoch.elapsed().as_nanos() as u64);

    'main: loop {
        // Fire due timers.
        let t_now = now();
        while timers.peek().map(|t| t.0 <= t_now).unwrap_or(false) {
            let TimerEnt(_, token) = timers.pop().expect("peeked");
            metrics.add(&format!("{prefix}timer.fired"), 1);
            driver.drive(
                Event::Timer { token },
                t_now,
                &mut store,
                &mut KernelOps {
                    slot,
                    timers: &mut timers,
                    transport: transport.as_mut(),
                    ref_log: &mut ref_log,
                    metrics: &mut metrics,
                    prefix: &prefix,
                },
            );
        }
        // Service posted faults.
        #[allow(clippy::needless_range_loop)] // `slot` is the site row, not the loop index.
        for slot_idx in 0..SLOTS_PER_SITE {
            let fslot = &MAILBOXES[slot][slot_idx];
            if fslot
                .state
                .compare_exchange(POSTED, IN_SERVICE, Ordering::AcqRel, Ordering::Relaxed)
                .is_err()
            {
                continue;
            }
            let addr = fslot.addr.load(Ordering::Relaxed);
            let hw_write = fslot.write.load(Ordering::Relaxed) == 1;
            let Some(hit) = region::lookup(addr) else {
                // Region vanished (segment destroyed mid-fault); let the
                // app retry and crash honestly.
                fslot.state.store(GRANTED, Ordering::Release);
                continue;
            };
            let page = PageNum((hit.offset / STRIDE) as u32);
            // Typed fault: the x86-64 error-code bit; on other
            // architectures infer from the current protection (a fault
            // on a readable page must be a write).
            let access = if hw_write || store.prot(hit.seg, page) == PageProt::Read {
                Access::Write
            } else {
                Access::Read
            };
            metrics.add(
                &format!(
                    "{prefix}fault.{}",
                    if access == Access::Write { "write" } else { "read" }
                ),
                1,
            );
            let pid = Pid::new(site, (slot_idx + 1) as u32);
            let t = now();
            driver.drive(
                Event::Fault { pid, seg: hit.seg, page, access },
                t,
                &mut store,
                &mut KernelOps {
                    slot,
                    timers: &mut timers,
                    transport: transport.as_mut(),
                    ref_log: &mut ref_log,
                    metrics: &mut metrics,
                    prefix: &prefix,
                },
            );
        }
        // Apply host commands.
        loop {
            match cmds.try_recv() {
                Ok(Command::CreateSegment { seg, pages, resident, ack }) => {
                    store.add_segment(seg, pages, resident);
                    driver.register_segment(seg, pages);
                    let base = store.mapping(seg).expect("just added").user_base() as usize;
                    let rslot = region::register(base, pages * STRIDE, slot, seg);
                    region_slots.lock().unwrap().push(rslot);
                    let _ = ack.send(base);
                }
                Ok(Command::Migrate { seg, to, shard }) => {
                    metrics.add(&format!("{prefix}migrate.issued"), 1);
                    let t = now();
                    driver.drive(
                        Event::MigrateLibrary { seg, to, shard },
                        t,
                        &mut store,
                        &mut KernelOps {
                            slot,
                            timers: &mut timers,
                            transport: transport.as_mut(),
                            ref_log: &mut ref_log,
                            metrics: &mut metrics,
                            prefix: &prefix,
                        },
                    );
                }
                Ok(Command::RefLog(ack)) => {
                    let _ = ack.send(ref_log.clone());
                }
                Ok(Command::Metrics(ack)) => {
                    let mut reg = metrics.clone();
                    let s = transport.stats();
                    reg.gauge_set(&format!("{prefix}wire.tx.frames"), s.tx_frames);
                    reg.gauge_set(&format!("{prefix}wire.tx.bytes"), s.tx_bytes);
                    reg.gauge_set(&format!("{prefix}wire.tx.dropped"), s.tx_dropped);
                    reg.gauge_set(&format!("{prefix}wire.rx.frames"), s.rx_frames);
                    reg.gauge_set(&format!("{prefix}wire.rx.bytes"), s.rx_bytes);
                    reg.gauge_set(&format!("{prefix}wire.rx.dup"), s.rx_dup);
                    reg.gauge_set(&format!("{prefix}wire.rx.stale"), s.rx_stale);
                    reg.gauge_set(&format!("{prefix}wire.rx.gap"), s.rx_gap);
                    reg.gauge_set(&format!("{prefix}wire.reconnects"), s.reconnects);
                    let _ = ack.send(reg);
                }
                Ok(Command::Snapshot(seg, ack)) => {
                    let pages =
                        store.segments().iter().find(|(s, _)| *s == seg).map(|(_, p)| *p);
                    let mut out = Vec::new();
                    if let Some(pages) = pages {
                        for p in 0..pages {
                            out.extend_from_slice(
                                store.copy(seg, PageNum(p as u32)).as_bytes(),
                            );
                        }
                    }
                    let _ = ack.send(out);
                }
                Ok(Command::Stop) => break 'main,
                Err(TryRecvError::Empty) => break,
                // Host dropped the command channel: shut down cleanly.
                Err(TryRecvError::Disconnected) => break 'main,
            }
        }
        // Wait briefly for wire traffic.
        match transport.recv_timeout(Duration::from_micros(500)) {
            TransportEvent::Frame(f) => {
                metrics.add(&format!("{prefix}deliver.msgs"), 1);
                match from_bytes::<ProtoMsg>(&f.payload) {
                    Ok(msg) => {
                        let t = now();
                        driver.drive(
                            Event::Deliver { from: f.from, msg },
                            t,
                            &mut store,
                            &mut KernelOps {
                                slot,
                                timers: &mut timers,
                                transport: transport.as_mut(),
                                ref_log: &mut ref_log,
                                metrics: &mut metrics,
                                prefix: &prefix,
                            },
                        );
                    }
                    // A frame that passed the checksum but fails the
                    // protocol codec is counted and dropped, never a
                    // panic: the retry chains re-drive the exchange.
                    Err(_) => metrics.add(&format!("{prefix}wire.decode_error"), 1),
                }
            }
            TransportEvent::Timeout => {}
            TransportEvent::Closed => break 'main,
        }
    }

    // Teardown poison (in this order — see module docs): open every
    // page so retried accesses succeed, raise the poison flag so the
    // fault handler stops parking threads, then grant whatever is
    // already parked.
    store.open_all();
    fault::poison(slot);
    let mut released = false;
    for fslot in &MAILBOXES[slot] {
        released |= fslot
            .state
            .compare_exchange(POSTED, GRANTED, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok();
        released |= fslot
            .state
            .compare_exchange(IN_SERVICE, GRANTED, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok();
    }
    if released {
        // A thread we just granted is about to retry its access; the
        // opened pages must stay mapped for that retry, so the store
        // (and its memfd mappings) is deliberately leaked. This only
        // happens on teardown with threads still parked — a bounded,
        // once-per-site cost that buys a deadlock-free exit.
        std::mem::forget(store);
    }
}
