//! The cluster launcher/supervisor: spawns one `mirage-site` process
//! per site, wires the topology through a shared manifest file, drives
//! the control protocol, can kill -9 and restart a member mid-run
//! (bumping its incarnation so peers sever the dead circuits), and
//! collects exit statuses plus a cross-site coherence verdict.

use std::collections::BTreeSet;
use std::io::{
    BufRead,
    BufReader,
    Write,
};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::{
    Child,
    Command as ProcCommand,
    Stdio,
};
use std::time::{
    Duration,
    Instant,
};

use crate::manifest::Manifest;

/// Kill one member mid-run, then (optionally) restart it.
#[derive(Clone, Copy, Debug)]
pub struct KillPlan {
    /// The site to kill -9.
    pub site: usize,
    /// How long after `start` to kill it.
    pub after: Duration,
    /// How long after the kill to respawn it (`None` = leave it dead).
    pub restart_after: Option<Duration>,
}

/// Launcher configuration.
#[derive(Clone, Debug)]
pub struct LaunchOpts {
    /// The cluster manifest (endpoints must be resolvable by every
    /// member — Unix socket paths or concrete TCP addresses).
    pub manifest: Manifest,
    /// Scratch directory for the manifest file and control sockets.
    pub dir: PathBuf,
    /// Path to the `mirage-site` binary.
    pub site_bin: PathBuf,
    /// Optional mid-run kill/restart.
    pub kill: Option<KillPlan>,
    /// Overall wall-clock budget for the run.
    pub deadline: Duration,
}

/// One member's outcome.
#[derive(Clone, Debug)]
pub struct SiteOutcome {
    /// Site index.
    pub site: usize,
    /// Readback checksum (protocol-read view of every segment), if the
    /// site survived to compute one.
    pub sum: Option<u64>,
    /// Exit code of the (final incarnation of the) process.
    pub exit: Option<i32>,
    /// True if this site was kill -9ed at some point.
    pub killed: bool,
    /// Final incarnation that ran.
    pub incarnation: u64,
}

/// What a cluster run produced.
#[derive(Clone, Debug)]
pub struct ClusterReport {
    /// Per-site outcomes, indexed by site.
    pub sites: Vec<SiteOutcome>,
    /// True when every surviving site's readback checksum agrees.
    pub coherent: bool,
    /// The agreed checksum (when `coherent` and at least one site
    /// reported).
    pub sum: Option<u64>,
    /// Merged metrics report (per-site `s<i>.`-prefixed counters,
    /// line-sorted so the shape is diffable across runs).
    pub metrics: String,
}

/// One live control connection.
struct Control {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Control {
    fn connect(path: &PathBuf, deadline: Instant) -> Result<Control, String> {
        loop {
            match UnixStream::connect(path) {
                Ok(s) => {
                    s.set_read_timeout(Some(Duration::from_secs(120)))
                        .map_err(|e| format!("control timeout: {e}"))?;
                    let writer = s.try_clone().map_err(|e| format!("clone control: {e}"))?;
                    return Ok(Control { reader: BufReader::new(s), writer });
                }
                Err(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => return Err(format!("connect {}: {e}", path.display())),
            }
        }
    }

    fn send(&mut self, line: &str) -> Result<(), String> {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .map_err(|e| format!("control write: {e}"))
    }

    fn recv(&mut self) -> Result<String, String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Err("control connection closed".into()),
            Ok(_) => Ok(line.trim().to_string()),
            Err(e) => Err(format!("control read: {e}")),
        }
    }

    fn expect(&mut self, want: &str) -> Result<(), String> {
        let got = self.recv()?;
        if got == want {
            Ok(())
        } else {
            Err(format!("expected {want:?}, got {got:?}"))
        }
    }

    /// Request/reply where the reply is `<tag> <rest>`; returns `rest`.
    fn ask(&mut self, req: &str, tag: &str) -> Result<String, String> {
        self.send(req)?;
        let got = self.recv()?;
        got.strip_prefix(tag)
            .map(|r| r.trim_start().to_string())
            .ok_or(format!("expected {tag:?} reply to {req:?}, got {got:?}"))
    }
}

/// One supervised member process.
struct Member {
    child: Child,
    control: Option<Control>,
    outcome: SiteOutcome,
}

fn spawn_site(
    opts: &LaunchOpts,
    manifest_path: &PathBuf,
    site: usize,
    incarnation: u64,
) -> Result<(Child, PathBuf), String> {
    let control_path = opts.dir.join(format!("ctl-{site}-{incarnation}.sock"));
    let child = ProcCommand::new(&opts.site_bin)
        .arg("--manifest")
        .arg(manifest_path)
        .arg("--site")
        .arg(site.to_string())
        .arg("--incarnation")
        .arg(incarnation.to_string())
        .arg("--control")
        .arg(&control_path)
        .stdin(Stdio::null())
        .stdout(Stdio::inherit())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", opts.site_bin.display()))?;
    Ok((child, control_path))
}

/// Runs the whole cluster lifecycle and reports.
///
/// # Errors
///
/// Setup failures (spawn, connect) and protocol violations, as text.
/// A member dying unexpectedly is an error unless it is the planned
/// kill victim.
pub fn run_cluster(opts: &LaunchOpts) -> Result<ClusterReport, String> {
    std::fs::create_dir_all(&opts.dir).map_err(|e| format!("mkdir: {e}"))?;
    let manifest_path = opts.dir.join("manifest.txt");
    opts.manifest.save(&manifest_path)?;
    let deadline = Instant::now() + opts.deadline;
    let n = opts.manifest.sites;

    // Spawn everyone and collect their `ready`s.
    let mut members: Vec<Member> = Vec::with_capacity(n);
    for site in 0..n {
        let (child, control_path) = spawn_site(opts, &manifest_path, site, 1)?;
        let mut control = Control::connect(&control_path, deadline)?;
        control.expect("ready")?;
        members.push(Member {
            child,
            control: Some(control),
            outcome: SiteOutcome { site, sum: None, exit: None, killed: false, incarnation: 1 },
        });
    }
    for m in &mut members {
        let c = m.control.as_mut().expect("connected above");
        c.send("start")?;
        c.expect("started")?;
    }

    // The mid-run kill/restart.
    if let Some(plan) = opts.kill {
        std::thread::sleep(plan.after);
        let m = &mut members[plan.site];
        m.child.kill().map_err(|e| format!("kill site {}: {e}", plan.site))?;
        let _ = m.child.wait();
        m.control = None;
        m.outcome.killed = true;
        if let Some(gap) = plan.restart_after {
            std::thread::sleep(gap);
            let inc = 2;
            let (child, control_path) = spawn_site(opts, &manifest_path, plan.site, inc)?;
            let mut control = Control::connect(&control_path, deadline)?;
            control.expect("ready")?;
            control.send("start")?;
            control.expect("started")?;
            members[plan.site].child = child;
            members[plan.site].control = Some(control);
            members[plan.site].outcome.incarnation = inc;
        }
    }

    // Wait for every live member's workload, then read back checksums
    // and metrics.
    let mut metric_lines: BTreeSet<String> = BTreeSet::new();
    for m in &mut members {
        let Some(c) = m.control.as_mut() else { continue };
        c.send("wait")?;
        c.expect("done")?;
    }
    for m in &mut members {
        let Some(c) = m.control.as_mut() else { continue };
        let hex = c.ask("readback", "sum")?;
        m.outcome.sum =
            Some(u64::from_str_radix(&hex, 16).map_err(|e| format!("bad sum {hex:?}: {e}"))?);
        let escaped = c.ask("metrics", "metrics")?;
        for line in escaped.split('|').filter(|l| !l.is_empty()) {
            metric_lines.insert(line.to_string());
        }
    }

    // Shut everyone down and collect exit statuses.
    for m in &mut members {
        if let Some(c) = m.control.as_mut() {
            c.send("exit")?;
            let _ = c.expect("bye");
        }
        if let Ok(status) = m.child.wait() {
            m.outcome.exit = status.code();
        }
    }

    let sums: Vec<u64> = members.iter().filter_map(|m| m.outcome.sum).collect();
    let coherent = !sums.is_empty() && sums.iter().all(|s| *s == sums[0]);
    Ok(ClusterReport {
        sites: members.into_iter().map(|m| m.outcome).collect(),
        coherent,
        sum: sums.first().copied().filter(|_| coherent),
        metrics: metric_lines.into_iter().collect::<Vec<_>>().join("\n"),
    })
}
