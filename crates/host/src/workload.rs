//! Deterministic application workloads shared by the in-process and
//! multi-process harnesses.
//!
//! Both deployment shapes run the *same* access pattern over the *same*
//! protocol, so the acceptance check "a socket cluster computes the
//! same final page contents as the channel cluster" is a byte-for-byte
//! comparison of [`readback_sum`]s — and [`expected_fill`] pins both to
//! the values the workload mathematically must produce.

use mirage_types::{
    fnv64,
    PageNum,
};

use crate::runtime::SegView;

/// Bytes of a DSM page each site owns in the fill workload. 16 bytes
/// supports 32 sites per 512-byte page.
pub const FILL_CELL: usize = 16;

/// The value site `site` writes into page `page` on round `round`.
pub fn fill_value(site: usize, page: u32, round: u32) -> u32 {
    ((site as u32) << 24) ^ (page << 12) ^ round ^ 0x5EED_0000
}

/// The fill workload at one site: every round, write this site's cell
/// of every page, then read a neighbor's cell — forced sharing, but a
/// deterministic final image (each cell's last writer is fixed).
pub fn fill(view: &SegView, site: usize, sites: usize, rounds: u32) {
    for round in 0..rounds {
        for page in 0..view.pages() as u32 {
            view.write_u32(PageNum(page), site * FILL_CELL, fill_value(site, page, round));
            // Read the previous site's cell: pulls a fresh copy and
            // keeps every page contended across the whole run.
            let neighbor = (site + sites - 1) % sites;
            let _ = view.read_u32(PageNum(page), neighbor * FILL_CELL);
        }
    }
}

/// The final page image `fill` must leave behind, regardless of wire,
/// interleaving, or site count: each site's cell holds its last-round
/// value, everything else is zero.
pub fn expected_fill(pages: usize, sites: usize, rounds: u32) -> Vec<u8> {
    let mut image = vec![0u8; pages * mirage_types::PAGE_SIZE];
    if rounds == 0 {
        return image;
    }
    for page in 0..pages as u32 {
        for site in 0..sites {
            let v = fill_value(site, page, rounds - 1);
            let off = page as usize * mirage_types::PAGE_SIZE + site * FILL_CELL;
            image[off..off + 4].copy_from_slice(&v.to_le_bytes());
        }
    }
    image
}

/// The writer half of the readers workload: publish 1..=target in page
/// 0, cell 0, pacing so readers (and a restarted reader) can observe
/// progress.
pub fn readers_writer(view: &SegView, target: u32) {
    for v in 1..=target {
        view.write_u32(PageNum(0), 0, v);
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
}

/// The reader half: poll page 0, cell 0 until the counter reaches
/// `target`. Returns the number of polls taken.
pub fn readers_reader(view: &SegView, target: u32) -> u64 {
    let mut polls = 0u64;
    loop {
        polls += 1;
        if view.read_u32(PageNum(0), 0) >= target {
            return polls;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}

/// A checksum over a segment's contents *as read through the view* —
/// every read pulls the freshest copy via the protocol, so two sites
/// computing different sums have genuinely diverged.
pub fn readback_sum(view: &SegView) -> u64 {
    let mut bytes = Vec::with_capacity(view.pages() * mirage_types::PAGE_SIZE);
    for page in 0..view.pages() as u32 {
        for off in (0..mirage_types::PAGE_SIZE).step_by(4) {
            bytes.extend_from_slice(&view.read_u32(PageNum(page), off).to_le_bytes());
        }
    }
    fnv64(&bytes)
}

/// The checksum [`readback_sum`] must produce over a raw page image.
pub fn image_sum(image: &[u8]) -> u64 {
    fnv64(image)
}
