//! The System V IPC front end over the real-memory runtime — the
//! paper's compatibility goal (§2.2/§3.0: "The standard UNIX interface
//! is preserved. … Applications written for the System V IPC interface
//! should not need to be recompiled.").
//!
//! `shmget`/`shmat`/`shmdt` compose the `mirage-mem` namespace and
//! address-space machinery with the [`HostCluster`]: segments are
//! created by key, attached at caller-chosen or first-fit *virtual
//! addresses* (different processes may use different addresses for the
//! same segment, §2.2), and accessed by plain virtual address — faults
//! and coherence are handled underneath by the Mirage protocol.

use std::collections::HashMap;

use mirage_core::ProtocolConfig;
use mirage_mem::{
    AddressSpace,
    Namespace,
    ShmFlags,
};
use mirage_types::{
    Access,
    MirageError,
    Pid,
    Result,
    SegKey,
    SegmentId,
    SiteId,
};
use std::sync::Mutex;

use crate::runtime::HostCluster;

/// The System V shared-memory interface for a running cluster.
///
/// "Processes" are identified by [`Pid`]; each has its own virtual
/// address space for attachments. The caller's `pid.site` determines
/// which site's memory its accesses touch (and which site becomes the
/// library for segments it creates).
pub struct SysV {
    cluster: HostCluster,
    /// One namespace per site: a segment's library site is its creator's
    /// site, exactly as in the kernel prototype.
    namespaces: Vec<Mutex<Namespace>>,
    /// Per-process virtual address spaces.
    spaces: Mutex<HashMap<Pid, AddressSpace>>,
}

impl SysV {
    /// Starts a cluster of `n` sites with the System V front end.
    pub fn start(n: usize, config: ProtocolConfig) -> Self {
        let cluster = HostCluster::start(n, config);
        let namespaces = (0..n).map(|i| Mutex::new(Namespace::new(SiteId(i as u16)))).collect();
        Self { cluster, namespaces, spaces: Mutex::new(HashMap::new()) }
    }

    /// Direct access to the underlying cluster (diagnostics, ref logs).
    pub fn cluster(&self) -> &HostCluster {
        &self.cluster
    }

    /// `shmget`: find or create a segment by key.
    ///
    /// Keys are network-global; a created segment's library site is the
    /// caller's site.
    ///
    /// # Errors
    ///
    /// As [`Namespace::get`]: invalid size, exclusive-create collision,
    /// or lookup of an absent key.
    pub fn shmget(
        &self,
        caller: Pid,
        key: SegKey,
        size: usize,
        flags: ShmFlags,
    ) -> Result<SegmentId> {
        // Keys are global: search every site's namespace first.
        for ns in &self.namespaces {
            if let Some(id) = ns.lock().unwrap().lookup(key) {
                if flags.create && flags.exclusive {
                    return Err(MirageError::KeyExists(key));
                }
                return Ok(id);
            }
        }
        let site = caller.site.index();
        let ns = self.namespaces.get(site).ok_or(MirageError::UnknownSite(caller.site))?;
        let id = ns.lock().unwrap().get(key, size, flags, caller)?;
        let pages = {
            let guard = ns.lock().unwrap();
            guard.info(id).expect("just created").pages()
        };
        self.cluster.adopt_segment(id, pages);
        Ok(id)
    }

    /// `shmat`: attach a segment into the caller's address space at the
    /// given address, or first-fit when `addr` is `None`.
    /// Returns the attach address.
    ///
    /// # Errors
    ///
    /// Permission failures from the namespace; address failures from the
    /// caller's address space.
    pub fn shmat(
        &self,
        caller: Pid,
        shmid: SegmentId,
        addr: Option<usize>,
        read_only: bool,
    ) -> Result<usize> {
        let ns = self
            .namespaces
            .get(shmid.library.index())
            .ok_or(MirageError::NoSuchSegment(shmid))?;
        let size = {
            let mut guard = ns.lock().unwrap();
            let access = if read_only { Access::Read } else { Access::Write };
            guard.attach(shmid, caller, access)?.size
        };
        let mut spaces = self.spaces.lock().unwrap();
        let space = spaces.entry(caller).or_default();
        let att = match addr {
            Some(a) => space.attach_at(shmid, size, a, read_only)?,
            None => space.attach_first_fit(shmid, size, read_only)?,
        };
        Ok(att.base)
    }

    /// `shmdt`: detach the segment from the caller's address space.
    /// Returns true if this was the segment's last detach network-wide
    /// (the segment name is destroyed, §2.2).
    ///
    /// # Errors
    ///
    /// [`MirageError::NoSuchSegment`] if not attached.
    pub fn shmdt(&self, caller: Pid, shmid: SegmentId) -> Result<bool> {
        {
            let mut spaces = self.spaces.lock().unwrap();
            let space = spaces.get_mut(&caller).ok_or(MirageError::NoSuchSegment(shmid))?;
            space.detach(shmid)?;
        }
        let ns = self
            .namespaces
            .get(shmid.library.index())
            .ok_or(MirageError::NoSuchSegment(shmid))?;
        let destroyed = ns.lock().unwrap().detach(shmid, caller)?;
        // Page frames live until the cluster is dropped; the *name* is
        // gone, matching System V (IPC_RMID-on-last-detach semantics).
        Ok(destroyed)
    }

    fn resolve(
        &self,
        caller: Pid,
        vaddr: usize,
    ) -> Result<(SegmentId, mirage_types::PageNum, usize, bool)> {
        let spaces = self.spaces.lock().unwrap();
        let space = spaces.get(&caller).ok_or(MirageError::NotAttached { addr: vaddr })?;
        let r = space.resolve(vaddr)?;
        Ok((r.segment, r.page, r.offset, r.read_only))
    }

    /// Loads a `u32` from a virtual address of the caller. May take a
    /// real page fault and block until the protocol grants read access.
    ///
    /// # Errors
    ///
    /// [`MirageError::NotAttached`] if no attachment covers the address.
    pub fn read_u32(&self, caller: Pid, vaddr: usize) -> Result<u32> {
        let (seg, page, off, _) = self.resolve(caller, vaddr)?;
        Ok(self.cluster.view(caller.site.index(), seg).read_u32(page, off))
    }

    /// Stores a `u32` to a virtual address of the caller. May take a
    /// real page fault and block until the protocol grants write access.
    ///
    /// # Errors
    ///
    /// [`MirageError::NotAttached`] for unmapped addresses;
    /// [`MirageError::PermissionDenied`] for writes through a read-only
    /// attachment (`SHM_RDONLY`).
    pub fn write_u32(&self, caller: Pid, vaddr: usize, val: u32) -> Result<()> {
        let (seg, page, off, read_only) = self.resolve(caller, vaddr)?;
        if read_only {
            return Err(MirageError::PermissionDenied(seg));
        }
        self.cluster.view(caller.site.index(), seg).write_u32(page, off, val);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use mirage_types::PAGE_SIZE;

    use super::*;

    fn pid(site: u16, n: u32) -> Pid {
        Pid::new(SiteId(site), n)
    }

    #[test]
    fn shmget_shmat_read_write_across_sites() {
        let sysv = SysV::start(2, ProtocolConfig::default());
        let alice = pid(0, 1);
        let bob = pid(1, 1);
        let id = sysv.shmget(alice, SegKey(77), 2 * PAGE_SIZE, ShmFlags::create_rw()).unwrap();
        // Bob finds the same segment by key without creating.
        let same = sysv.shmget(bob, SegKey(77), 0, ShmFlags::lookup()).unwrap();
        assert_eq!(id, same);
        // Different virtual addresses at the two processes (§2.2).
        let a_base = sysv.shmat(alice, id, None, false).unwrap();
        let b_base = sysv
            .shmat(bob, id, Some(mirage_mem::addr::SHM_BASE + 16 * PAGE_SIZE), false)
            .unwrap();
        assert_ne!(a_base, b_base);
        // Alice writes; Bob reads the same logical location through his
        // own mapping — across a real page migration.
        sysv.write_u32(alice, a_base + PAGE_SIZE + 12, 0xFACE).unwrap();
        assert_eq!(sysv.read_u32(bob, b_base + PAGE_SIZE + 12).unwrap(), 0xFACE);
    }

    #[test]
    fn read_only_attach_rejects_writes() {
        let sysv = SysV::start(1, ProtocolConfig::default());
        let p = pid(0, 1);
        let id = sysv.shmget(p, SegKey(5), PAGE_SIZE, ShmFlags::create_rw()).unwrap();
        let base = sysv.shmat(p, id, None, true).unwrap();
        assert!(matches!(sysv.write_u32(p, base, 1), Err(MirageError::PermissionDenied(_))));
        // Reads are fine.
        assert_eq!(sysv.read_u32(p, base).unwrap(), 0);
    }

    #[test]
    fn last_detach_destroys_the_name() {
        let sysv = SysV::start(2, ProtocolConfig::default());
        let a = pid(0, 1);
        let b = pid(1, 1);
        let id = sysv.shmget(a, SegKey(9), PAGE_SIZE, ShmFlags::create_rw()).unwrap();
        sysv.shmat(a, id, None, false).unwrap();
        sysv.shmat(b, id, None, false).unwrap();
        assert!(!sysv.shmdt(a, id).unwrap());
        assert!(sysv.shmdt(b, id).unwrap(), "last detach destroys");
        // The key is gone; lookup now fails.
        assert!(matches!(
            sysv.shmget(a, SegKey(9), 0, ShmFlags::lookup()),
            Err(MirageError::NoSuchKey(_))
        ));
    }

    #[test]
    fn exclusive_create_sees_keys_from_other_sites() {
        let sysv = SysV::start(2, ProtocolConfig::default());
        let a = pid(0, 1);
        let b = pid(1, 1);
        sysv.shmget(a, SegKey(4), PAGE_SIZE, ShmFlags::create_rw()).unwrap();
        let mut excl = ShmFlags::create_rw();
        excl.exclusive = true;
        // Site 1's exclusive create must collide with site 0's key.
        assert!(matches!(
            sysv.shmget(b, SegKey(4), PAGE_SIZE, excl),
            Err(MirageError::KeyExists(_))
        ));
    }

    #[test]
    fn unattached_access_fails_cleanly() {
        let sysv = SysV::start(1, ProtocolConfig::default());
        let p = pid(0, 1);
        assert!(matches!(
            sysv.read_u32(p, mirage_mem::addr::SHM_BASE),
            Err(MirageError::NotAttached { .. })
        ));
    }
}
