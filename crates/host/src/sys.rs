//! Minimal raw libc bindings for the host runtime (x86-64 Linux/glibc).
//!
//! The runtime needs only a dozen syscall wrappers — memory mapping,
//! signal installation, and process control for tests — so they are
//! declared here directly instead of pulling in an external bindings
//! crate. Layouts mirror glibc's x86-64 definitions; only the fields the
//! runtime reads are exposed by name.

#![allow(non_camel_case_types, non_snake_case, missing_docs)]

pub use core::ffi::{
    c_char,
    c_int,
    c_uint,
    c_void,
};

pub type off_t = i64;
pub type size_t = usize;
pub type ssize_t = isize;
pub type pid_t = i32;

/// glibc `sigset_t`: 1024 bits.
pub type sigset_t = [u64; 16];

pub const PROT_NONE: c_int = 0;
pub const PROT_READ: c_int = 1;
pub const PROT_WRITE: c_int = 2;
pub const MAP_SHARED: c_int = 1;
pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

pub const SIGSEGV: c_int = 11;
pub const SIGKILL: c_int = 9;
pub const SA_SIGINFO: c_int = 4;
#[allow(overflowing_literals)]
pub const SA_RESTART: c_int = 0x1000_0000;
pub const SIG_DFL: usize = 0;

/// Index of the page-fault error code in `mcontext_t.gregs` (x86-64).
pub const REG_ERR: c_int = 19;

/// glibc `struct sigaction` (x86-64 layout: handler, mask, flags,
/// restorer).
#[repr(C)]
pub struct sigaction {
    pub sa_sigaction: usize,
    pub sa_mask: sigset_t,
    pub sa_flags: c_int,
    sa_restorer: usize,
}

/// glibc `siginfo_t` (128 bytes). Only `si_addr` is read, via the
/// accessor, matching its offset for memory-access signals.
#[repr(C)]
pub struct siginfo_t {
    pub si_signo: c_int,
    pub si_errno: c_int,
    pub si_code: c_int,
    _pad: c_int,
    _sifields: [u64; 14],
}

impl siginfo_t {
    /// The faulting address (valid for `SIGSEGV`/`SIGBUS`).
    ///
    /// # Safety
    ///
    /// Only meaningful inside a handler for a memory-access signal,
    /// where the kernel fills this union arm.
    pub unsafe fn si_addr(&self) -> *mut c_void {
        self._sifields[0] as *mut c_void
    }
}

/// glibc `mcontext_t` (x86-64): general registers first.
#[repr(C)]
pub struct mcontext_t {
    pub gregs: [i64; 23],
    _fpregs: *mut c_void,
    _reserved1: [u64; 8],
}

/// glibc `ucontext_t` (x86-64), up to the fields the handler reads.
/// The kernel hands the handler a pointer into a full-size structure;
/// trailing fields (signal mask, FP state) are simply not declared.
#[repr(C)]
pub struct ucontext_t {
    _uc_flags: u64,
    _uc_link: *mut ucontext_t,
    _uc_stack: [u64; 3],
    pub uc_mcontext: mcontext_t,
}

/// glibc `struct timespec`.
#[repr(C)]
pub struct timespec {
    pub tv_sec: i64,
    pub tv_nsec: i64,
}

extern "C" {
    pub fn memfd_create(name: *const c_char, flags: c_uint) -> c_int;
    pub fn ftruncate(fd: c_int, length: off_t) -> c_int;
    pub fn mmap(
        addr: *mut c_void,
        length: size_t,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: off_t,
    ) -> *mut c_void;
    pub fn mprotect(addr: *mut c_void, len: size_t, prot: c_int) -> c_int;
    pub fn munmap(addr: *mut c_void, length: size_t) -> c_int;
    pub fn close(fd: c_int) -> c_int;
    pub fn __errno_location() -> *mut c_int;

    pub fn sigaction(signum: c_int, act: *const sigaction, oldact: *mut sigaction) -> c_int;
    pub fn sigemptyset(set: *mut sigset_t) -> c_int;
    pub fn raise(sig: c_int) -> c_int;
    pub fn write(fd: c_int, buf: *const c_void, count: size_t) -> ssize_t;
    pub fn nanosleep(req: *const timespec, rem: *mut timespec) -> c_int;

    pub fn fork() -> pid_t;
    pub fn _exit(status: c_int) -> !;
    pub fn waitpid(pid: pid_t, status: *mut c_int, options: c_int) -> pid_t;
    pub fn kill(pid: pid_t, sig: c_int) -> c_int;
}

/// True if the child exited due to a signal (`WIFSIGNALED`).
pub fn WIFSIGNALED(status: c_int) -> bool {
    ((status & 0x7f) + 1) as i8 >> 1 > 0
}

/// The terminating signal number (`WTERMSIG`).
pub fn WTERMSIG(status: c_int) -> c_int {
    status & 0x7f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigaction_layout_matches_glibc() {
        // glibc x86-64: 8 (handler) + 128 (mask) + 4 (+4 pad) + 8.
        assert_eq!(core::mem::size_of::<sigaction>(), 152);
        assert_eq!(core::mem::size_of::<siginfo_t>(), 128);
        // gregs start 40 bytes into ucontext_t (flags + link + stack_t).
        assert_eq!(core::mem::offset_of!(ucontext_t, uc_mcontext), 40);
    }

    #[test]
    fn wait_status_decoding() {
        // A status of "killed by SIGSEGV" is the raw signal number.
        assert!(WIFSIGNALED(SIGSEGV));
        assert_eq!(WTERMSIG(SIGSEGV), SIGSEGV);
        // Normal exit (status << 8) is not a signal death.
        assert!(!WIFSIGNALED(0));
        assert!(!WIFSIGNALED(1 << 8));
    }
}
