//! [`mirage_core::PageStore`] over real memory.

use std::collections::HashMap;

use mirage_core::PageStore;
use mirage_mem::PageData;
use mirage_types::{
    PageNum,
    PageProt,
    SegmentId,
    PAGE_SIZE,
};

use crate::arch::DoubleMapping;

/// One site's page frames: the double mappings plus an authoritative
/// protection mirror (querying the kernel for current protections is
/// not practical; the protocol engine is the only writer of protections
/// so the mirror cannot drift).
#[derive(Debug, Default)]
pub struct HostStore {
    segs: HashMap<SegmentId, (DoubleMapping, Vec<PageProt>)>,
}

impl HostStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a segment of `pages` DSM pages. `resident` selects the
    /// creator's fully-resident read-write view versus an absent view.
    pub fn add_segment(&mut self, seg: SegmentId, pages: usize, resident: bool) {
        let map = DoubleMapping::new(pages * crate::arch::STRIDE);
        let mut prots = vec![PageProt::None; pages];
        if resident {
            for (p, prot) in prots.iter_mut().enumerate() {
                map.protect(p, PageProt::ReadWrite);
                *prot = PageProt::ReadWrite;
            }
        }
        self.segs.insert(seg, (map, prots));
    }

    /// The mapping for a segment (for registration and app views).
    pub fn mapping(&self, seg: SegmentId) -> Option<&DoubleMapping> {
        self.segs.get(&seg).map(|(m, _)| m)
    }

    /// Every segment held, with its page count (deterministic order).
    pub fn segments(&self) -> Vec<(SegmentId, usize)> {
        let mut v: Vec<_> = self.segs.iter().map(|(s, (_, p))| (*s, p.len())).collect();
        v.sort();
        v
    }

    /// Opens every page of every segment read-write — the teardown
    /// poison step, so app threads retrying a fault after the kernel
    /// died succeed locally instead of spinning forever.
    pub fn open_all(&mut self) {
        for (map, prots) in self.segs.values_mut() {
            for (p, prot) in prots.iter_mut().enumerate() {
                map.protect(p, PageProt::ReadWrite);
                *prot = PageProt::ReadWrite;
            }
        }
    }
}

impl PageStore for HostStore {
    fn take(&mut self, seg: SegmentId, page: PageNum) -> PageData {
        let Some((map, prots)) = self.segs.get_mut(&seg) else {
            return PageData::zeroed();
        };
        let mut buf = [0u8; PAGE_SIZE];
        map.read_page(page.index(), &mut buf);
        map.protect(page.index(), PageProt::None);
        prots[page.index()] = PageProt::None;
        PageData::from_bytes(&buf)
    }

    fn copy(&self, seg: SegmentId, page: PageNum) -> PageData {
        let Some((map, _)) = self.segs.get(&seg) else {
            return PageData::zeroed();
        };
        let mut buf = [0u8; PAGE_SIZE];
        map.read_page(page.index(), &mut buf);
        PageData::from_bytes(&buf)
    }

    fn install(&mut self, seg: SegmentId, page: PageNum, data: PageData, prot: PageProt) {
        let Some((map, prots)) = self.segs.get_mut(&seg) else {
            return;
        };
        // Write the bytes through the kernel view first, then open the
        // user view — a reader woken after `install` must see the data.
        map.write_page(page.index(), data.as_bytes());
        map.protect(page.index(), prot);
        prots[page.index()] = prot;
    }

    fn set_prot(&mut self, seg: SegmentId, page: PageNum, prot: PageProt) {
        let Some((map, prots)) = self.segs.get_mut(&seg) else {
            return;
        };
        map.protect(page.index(), prot);
        prots[page.index()] = prot;
    }

    fn prot(&self, seg: SegmentId, page: PageNum) -> PageProt {
        self.segs.get(&seg).map(|(_, prots)| prots[page.index()]).unwrap_or(PageProt::None)
    }
}

#[cfg(test)]
mod tests {
    use mirage_types::SiteId;

    use super::*;

    fn sid() -> SegmentId {
        SegmentId::new(SiteId(0), 1)
    }

    #[test]
    fn install_take_round_trip_through_real_memory() {
        let mut st = HostStore::new();
        st.add_segment(sid(), 2, false);
        let mut d = PageData::zeroed();
        d.store_u32(8, 0xFEED);
        st.install(sid(), PageNum(1), d, PageProt::Read);
        assert_eq!(st.prot(sid(), PageNum(1)), PageProt::Read);
        let back = st.take(sid(), PageNum(1));
        assert_eq!(back.load_u32(8), 0xFEED);
        assert_eq!(st.prot(sid(), PageNum(1)), PageProt::None);
    }

    #[test]
    fn resident_creator_view_is_writable() {
        let mut st = HostStore::new();
        st.add_segment(sid(), 1, true);
        assert_eq!(st.prot(sid(), PageNum(0)), PageProt::ReadWrite);
        let d = st.copy(sid(), PageNum(0));
        assert_eq!(d.load_u32(0), 0, "fresh segment is zeroed");
    }
}
