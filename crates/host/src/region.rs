//! The global fault-routing table: which user-view address ranges belong
//! to which site and segment.
//!
//! The `SIGSEGV` handler consults this table, so it must be readable
//! without locks or allocation: a fixed array of atomically-published
//! entries, written once per registration before any fault can occur on
//! the range.

use core::sync::atomic::{
    AtomicUsize,
    Ordering,
};

use mirage_types::SegmentId;

/// Maximum registered regions process-wide.
pub const MAX_REGIONS: usize = 1024;

/// One registered user-view range.
#[derive(Debug)]
struct Slot {
    /// Base address (0 = empty slot). Published *last*.
    base: AtomicUsize,
    len: AtomicUsize,
    site: AtomicUsize,
    seg_lib: AtomicUsize,
    seg_serial: AtomicUsize,
}

#[allow(clippy::declare_interior_mutable_const)]
const EMPTY: Slot = Slot {
    base: AtomicUsize::new(0),
    len: AtomicUsize::new(0),
    site: AtomicUsize::new(0),
    seg_lib: AtomicUsize::new(0),
    seg_serial: AtomicUsize::new(0),
};

static REGIONS: [Slot; MAX_REGIONS] = [EMPTY; MAX_REGIONS];
static NEXT: AtomicUsize = AtomicUsize::new(0);

/// A fault-table lookup result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegionHit {
    /// Site index owning the region.
    pub site: usize,
    /// Segment mapped there.
    pub seg: SegmentId,
    /// Byte offset of the fault within the region.
    pub offset: usize,
}

/// Registers a user-view range. Returns the slot index.
///
/// # Panics
///
/// Panics if the table is full.
pub fn register(base: usize, len: usize, site: usize, seg: SegmentId) -> usize {
    let idx = NEXT.fetch_add(1, Ordering::Relaxed);
    assert!(idx < MAX_REGIONS, "region table full");
    let s = &REGIONS[idx];
    s.len.store(len, Ordering::Relaxed);
    s.site.store(site, Ordering::Relaxed);
    s.seg_lib.store(seg.library.0 as usize, Ordering::Relaxed);
    s.seg_serial.store(seg.serial as usize, Ordering::Relaxed);
    // Publish the base last with Release so a handler that observes it
    // also observes the other fields.
    s.base.store(base, Ordering::Release);
    idx
}

/// Unregisters a slot (marks it empty).
pub fn unregister(idx: usize) {
    REGIONS[idx].base.store(0, Ordering::Release);
}

/// Looks up the region containing `addr`. Async-signal-safe: no locks,
/// no allocation.
pub fn lookup(addr: usize) -> Option<RegionHit> {
    let n = NEXT.load(Ordering::Relaxed).min(MAX_REGIONS);
    for s in REGIONS.iter().take(n) {
        let base = s.base.load(Ordering::Acquire);
        if base == 0 {
            continue;
        }
        let len = s.len.load(Ordering::Relaxed);
        if addr >= base && addr < base + len {
            return Some(RegionHit {
                site: s.site.load(Ordering::Relaxed),
                seg: SegmentId::new(
                    mirage_types::SiteId(s.seg_lib.load(Ordering::Relaxed) as u16),
                    s.seg_serial.load(Ordering::Relaxed) as u32,
                ),
                offset: addr - base,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use mirage_types::SiteId;

    use super::*;

    #[test]
    fn register_lookup_unregister() {
        let seg = SegmentId::new(SiteId(0), 77);
        // Use an address range no real mapping will occupy in tests.
        let base = 0x7000_0000_0000usize;
        let idx = register(base, 8192, 3, seg);
        let hit = lookup(base + 5000).expect("inside region");
        assert_eq!(hit.site, 3);
        assert_eq!(hit.seg, seg);
        assert_eq!(hit.offset, 5000);
        assert!(lookup(base + 8192).is_none(), "end is exclusive");
        assert!(lookup(base - 1).is_none());
        unregister(idx);
        assert!(lookup(base + 5000).is_none());
    }
}
