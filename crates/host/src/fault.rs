//! The `SIGSEGV` fault path: handler installation, typed-fault
//! classification, and the handler↔kernel-thread mailbox.
//!
//! Everything the handler touches is async-signal-safe: atomics, the
//! static region table, `write(2)` on a pipe, and `nanosleep(2)`.

use core::sync::atomic::{
    AtomicI32,
    AtomicU32,
    AtomicUsize,
    Ordering,
};

use crate::region;
use crate::sys as libc;

/// Fault slots per site (max concurrent faulting app threads).
pub const SLOTS_PER_SITE: usize = 64;
/// Maximum site slots in one process (across all clusters ever started;
/// slots are never reused).
pub const MAX_SITES: usize = 64;

/// Slot states.
pub const FREE: u32 = 0;
const CLAIMING: u32 = 1;
/// Posted by the handler, awaiting kernel pickup.
pub const POSTED: u32 = 2;
/// Kernel thread took the fault; the process is "asleep".
pub const IN_SERVICE: u32 = 4;
/// Granted; the handler may return and retry the access.
pub const GRANTED: u32 = 3;

/// One fault mailbox slot.
#[derive(Debug)]
pub struct FaultSlot {
    /// State machine: FREE → CLAIMING → POSTED → IN_SERVICE → GRANTED →
    /// FREE.
    pub state: AtomicU32,
    /// Faulting user-view address.
    pub addr: AtomicUsize,
    /// 1 if the access was a write.
    pub write: AtomicU32,
}

#[allow(clippy::declare_interior_mutable_const)]
const EMPTY_SLOT: FaultSlot = FaultSlot {
    state: AtomicU32::new(FREE),
    addr: AtomicUsize::new(0),
    write: AtomicU32::new(0),
};

/// Per-site fault mailboxes, indexed by site.
pub static MAILBOXES: [[FaultSlot; SLOTS_PER_SITE]; MAX_SITES] =
    [const { [EMPTY_SLOT; SLOTS_PER_SITE] }; MAX_SITES];

/// Per-site wake pipes (write end), registered at site startup.
/// -1 = unset.
static PIPES: [AtomicI32; MAX_SITES] = [const { AtomicI32::new(-1) }; MAX_SITES];

/// Per-site poison flags: a site whose kernel thread has exited. The
/// handler must never park a thread against a dead kernel — no one
/// would ever grant it — so faults on a poisoned site return
/// immediately and the access retries against the opened (read-write)
/// teardown protections.
static POISONED: [AtomicU32; MAX_SITES] = [const { AtomicU32::new(0) }; MAX_SITES];

/// Marks a site's kernel as gone. Called by the kernel on its way out,
/// *after* it has opened every page read-write, so a retried access
/// succeeds instead of refaulting forever. Site slots are never reused,
/// so poisoning is permanent for the slot.
pub fn poison(site: usize) {
    POISONED[site].store(1, Ordering::Release);
}

/// True once [`poison`] has been called for the site slot.
pub fn is_poisoned(site: usize) -> bool {
    POISONED[site].load(Ordering::Acquire) != 0
}

/// Registers a site's wake-pipe write end.
pub fn set_pipe(site: usize, write_fd: i32) {
    PIPES[site].store(write_fd, Ordering::Release);
}

/// Extracts the "access was a write" bit from the fault context.
///
/// On x86-64, bit 1 of the page-fault error code (saved in
/// `uc_mcontext.gregs[REG_ERR]`) is set for writes — the analogue of
/// the paper's "VAX hardware bit that indicates the fault type" (§6.2).
#[cfg(target_arch = "x86_64")]
fn fault_is_write(ctx: *mut libc::c_void) -> bool {
    // SAFETY: the kernel passes a valid `ucontext_t` as the third
    // argument of an SA_SIGINFO handler; we only read the error-code
    // general register slot.
    unsafe {
        let uc = ctx.cast::<libc::ucontext_t>();
        let err = (*uc).uc_mcontext.gregs[libc::REG_ERR as usize];
        err & 0x2 != 0
    }
}

/// Portable fallback: infer the fault type from the page's current
/// protection at request time (a fault on a readable page must be a
/// write). The runtime uses protection inference on non-x86 targets.
#[cfg(not(target_arch = "x86_64"))]
fn fault_is_write(_ctx: *mut libc::c_void) -> bool {
    false
}

/// The `SIGSEGV` handler.
///
/// # Safety contract (async-signal-safety)
///
/// Touches only: `siginfo` fields, the static atomics above, the static
/// region table, and the `write`/`nanosleep` syscalls. Never allocates,
/// locks, or panics on the DSM path; a fault outside every registered
/// region reinstalls the default disposition and re-raises, so genuine
/// crashes still crash.
extern "C" fn on_sigsegv(
    _sig: libc::c_int,
    info: *mut libc::siginfo_t,
    ctx: *mut libc::c_void,
) {
    // SAFETY: the kernel passes a valid siginfo for SA_SIGINFO handlers.
    let addr = unsafe { (*info).si_addr() } as usize;
    let Some(hit) = region::lookup(addr) else {
        // A real segfault: restore default and re-raise so the process
        // dies with an honest SIGSEGV instead of spinning here.
        // SAFETY: resetting a signal disposition and re-raising are
        // async-signal-safe.
        unsafe {
            let mut sa: libc::sigaction = core::mem::zeroed();
            sa.sa_sigaction = libc::SIG_DFL;
            libc::sigaction(libc::SIGSEGV, &sa, core::ptr::null_mut());
            libc::raise(libc::SIGSEGV);
        }
        return;
    };
    if POISONED[hit.site].load(Ordering::Acquire) != 0 {
        // Dead kernel: the teardown path already opened the pages, so
        // returning retries the access successfully. Never park here.
        return;
    }
    let is_write = fault_is_write(ctx);
    let slots = &MAILBOXES[hit.site];
    // Claim a slot.
    let mut idx = usize::MAX;
    for (i, s) in slots.iter().enumerate() {
        if s.state.compare_exchange(FREE, CLAIMING, Ordering::AcqRel, Ordering::Relaxed).is_ok()
        {
            idx = i;
            break;
        }
    }
    if idx == usize::MAX {
        // All slots busy: brief sleep and retry by returning — the
        // instruction refaults immediately.
        nanosleep_ms(1);
        return;
    }
    let slot = &slots[idx];
    slot.addr.store(addr, Ordering::Relaxed);
    slot.write.store(u32::from(is_write), Ordering::Relaxed);
    slot.state.store(POSTED, Ordering::Release);
    // Wake the site's kernel thread.
    let fd = PIPES[hit.site].load(Ordering::Acquire);
    if fd >= 0 {
        let byte = [idx as u8];
        // SAFETY: write(2) on a pipe fd is async-signal-safe; partial or
        // failed writes are tolerated (the kernel thread also polls).
        unsafe {
            let _ = libc::write(fd, byte.as_ptr().cast(), 1);
        }
    }
    // Sleep until granted ("the faulting process awaits the library's
    // request processing by sleeping", §6.1). A kernel that dies while
    // we sleep poisons the site instead of granting; bail out so the
    // thread survives cluster teardown.
    while slot.state.load(Ordering::Acquire) != GRANTED {
        if POISONED[hit.site].load(Ordering::Acquire) != 0 {
            slot.state.store(FREE, Ordering::Release);
            return;
        }
        nanosleep_ms(1);
    }
    slot.state.store(FREE, Ordering::Release);
    // Return: the faulting instruction retries against the new mapping.
}

fn nanosleep_ms(ms: u64) {
    let ts = libc::timespec { tv_sec: 0, tv_nsec: (ms * 1_000_000) as i64 };
    // SAFETY: nanosleep with a valid timespec; async-signal-safe.
    unsafe {
        libc::nanosleep(&ts, core::ptr::null_mut());
    }
}

/// Installs the handler once per process.
pub fn install_handler() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        // SAFETY: standard SA_SIGINFO handler installation; the handler
        // obeys the async-signal-safety contract documented above.
        unsafe {
            let mut sa: libc::sigaction = core::mem::zeroed();
            sa.sa_sigaction = on_sigsegv as extern "C" fn(_, _, _) as usize;
            sa.sa_flags = libc::SA_SIGINFO | libc::SA_RESTART;
            libc::sigemptyset(&mut sa.sa_mask);
            let rc = libc::sigaction(libc::SIGSEGV, &sa, core::ptr::null_mut());
            assert_eq!(rc, 0, "sigaction failed");
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_state_machine_constants_distinct() {
        let states = [FREE, CLAIMING, POSTED, IN_SERVICE, GRANTED];
        for (i, a) in states.iter().enumerate() {
            for b in states.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn handler_installation_is_idempotent() {
        install_handler();
        install_handler();
    }
}
