//! The cluster manifest: topology and workload for a multi-process run.
//!
//! The launcher writes one manifest file; every `mirage-site` process
//! reads it back, so all members agree on the site count, each site's
//! endpoint, the protocol knobs, the segments, and the workload. The
//! format is deliberately plain — one directive per line, `#` comments —
//! so a manifest is also a legible record of what a run *was*:
//!
//! ```text
//! sites 3
//! delta 1
//! retry on
//! site 0 uds:/tmp/run/site0.sock
//! site 1 uds:/tmp/run/site1.sock
//! site 2 uds:/tmp/run/site2.sock
//! segment 0 4
//! workload fill 8
//! ```

use std::path::Path;

use mirage_core::{
    ProtocolConfig,
    RetryPolicy,
};
use mirage_net::transport::Endpoint;
use mirage_types::Delta;

/// One shared segment: which site hosts the library, and its size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentSpec {
    /// Library (creator) site index.
    pub lib: usize,
    /// DSM pages.
    pub pages: usize,
}

/// What the application threads do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// Every site writes its own cells of every page for `rounds`
    /// rounds and reads the others' — deterministic final contents, so
    /// two runs (or two wires) can be compared byte-for-byte.
    Fill {
        /// Write rounds.
        rounds: u32,
    },
    /// Site 0 publishes an ascending counter; every other site
    /// poll-reads until it observes `target`. The kill-and-restart
    /// test's shape: any reader can die and rejoin mid-stream.
    Readers {
        /// Final counter value.
        target: u32,
    },
}

/// A parsed cluster manifest.
#[derive(Clone, Debug, PartialEq)]
pub struct Manifest {
    /// Number of sites.
    pub sites: usize,
    /// Site endpoints, indexed by site.
    pub endpoints: Vec<Endpoint>,
    /// Δ window in scheduler ticks (1 tick ≈ 16.7 ms).
    pub delta_ticks: u32,
    /// Run with the retry/backoff machinery (required for migration
    /// and crash recovery).
    pub retry: bool,
    /// Shared segments.
    pub segments: Vec<SegmentSpec>,
    /// Application workload.
    pub workload: Workload,
}

impl Manifest {
    /// The [`ProtocolConfig`] every site derives from this manifest.
    pub fn protocol_config(&self) -> ProtocolConfig {
        let mut config = ProtocolConfig::paper(Delta(self.delta_ticks));
        config.retry = self.retry.then(RetryPolicy::default);
        config
    }

    /// Renders the manifest in the line format [`Manifest::parse`]
    /// reads.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("sites {}\n", self.sites));
        out.push_str(&format!("delta {}\n", self.delta_ticks));
        out.push_str(&format!("retry {}\n", if self.retry { "on" } else { "off" }));
        for (i, ep) in self.endpoints.iter().enumerate() {
            out.push_str(&format!("site {i} {ep}\n"));
        }
        for s in &self.segments {
            out.push_str(&format!("segment {} {}\n", s.lib, s.pages));
        }
        match self.workload {
            Workload::Fill { rounds } => out.push_str(&format!("workload fill {rounds}\n")),
            Workload::Readers { target } => {
                out.push_str(&format!("workload readers {target}\n"));
            }
        }
        out
    }

    /// Parses the line format.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or missing
    /// directive.
    pub fn parse(text: &str) -> Result<Manifest, String> {
        let mut sites = None;
        let mut delta_ticks = None;
        let mut retry = true;
        let mut eps: Vec<(usize, Endpoint)> = Vec::new();
        let mut segments = Vec::new();
        let mut workload = None;
        for (ln, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |what: &str| format!("line {}: {what}: {line}", ln + 1);
            let mut words = line.split_whitespace();
            match words.next() {
                Some("sites") => {
                    sites = Some(
                        words
                            .next()
                            .and_then(|w| w.parse().ok())
                            .ok_or_else(|| err("bad site count"))?,
                    );
                }
                Some("delta") => {
                    delta_ticks = Some(
                        words
                            .next()
                            .and_then(|w| w.parse().ok())
                            .ok_or_else(|| err("bad delta"))?,
                    );
                }
                Some("retry") => {
                    retry = match words.next() {
                        Some("on") => true,
                        Some("off") => false,
                        _ => return Err(err("retry must be on|off")),
                    };
                }
                Some("site") => {
                    let idx: usize = words
                        .next()
                        .and_then(|w| w.parse().ok())
                        .ok_or_else(|| err("bad site index"))?;
                    let ep = words
                        .next()
                        .and_then(Endpoint::parse)
                        .ok_or_else(|| err("bad endpoint"))?;
                    eps.push((idx, ep));
                }
                Some("segment") => {
                    let lib = words
                        .next()
                        .and_then(|w| w.parse().ok())
                        .ok_or_else(|| err("bad library site"))?;
                    let pages = words
                        .next()
                        .and_then(|w| w.parse().ok())
                        .ok_or_else(|| err("bad page count"))?;
                    segments.push(SegmentSpec { lib, pages });
                }
                Some("workload") => {
                    workload = Some(match (words.next(), words.next()) {
                        (Some("fill"), Some(n)) => {
                            Workload::Fill { rounds: n.parse().map_err(|_| err("bad rounds"))? }
                        }
                        (Some("readers"), Some(n)) => Workload::Readers {
                            target: n.parse().map_err(|_| err("bad target"))?,
                        },
                        _ => return Err(err("unknown workload")),
                    });
                }
                _ => return Err(err("unknown directive")),
            }
        }
        let sites = sites.ok_or("missing `sites`")?;
        let mut endpoints = vec![None; sites];
        for (i, ep) in eps {
            if i >= sites {
                return Err(format!("site index {i} out of range"));
            }
            endpoints[i] = Some(ep);
        }
        let endpoints: Vec<Endpoint> = endpoints
            .into_iter()
            .enumerate()
            .map(|(i, e)| e.ok_or(format!("missing endpoint for site {i}")))
            .collect::<Result<_, _>>()?;
        Ok(Manifest {
            sites,
            endpoints,
            delta_ticks: delta_ticks.ok_or("missing `delta`")?,
            retry,
            segments,
            workload: workload.ok_or("missing `workload`")?,
        })
    }

    /// Reads and parses a manifest file.
    ///
    /// # Errors
    ///
    /// I/O failures and parse errors, as text.
    pub fn load(path: &Path) -> Result<Manifest, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::parse(&text)
    }

    /// Writes the manifest to a file.
    ///
    /// # Errors
    ///
    /// I/O failures, as text.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        std::fs::write(path, self.render()).map_err(|e| format!("{}: {e}", path.display()))
    }
}

#[cfg(test)]
mod tests {
    use std::path::PathBuf;

    use super::*;

    fn sample() -> Manifest {
        Manifest {
            sites: 2,
            endpoints: vec![
                Endpoint::Uds(PathBuf::from("/tmp/a.sock")),
                Endpoint::Tcp("127.0.0.1:7401".into()),
            ],
            delta_ticks: 1,
            retry: true,
            segments: vec![SegmentSpec { lib: 0, pages: 4 }],
            workload: Workload::Fill { rounds: 8 },
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let m = sample();
        assert_eq!(Manifest::parse(&m.render()).unwrap(), m);
        let mut r = sample();
        r.workload = Workload::Readers { target: 50 };
        r.retry = false;
        assert_eq!(Manifest::parse(&r.render()).unwrap(), r);
    }

    #[test]
    fn parse_rejects_holes_and_junk() {
        assert!(Manifest::parse("sites 2\ndelta 1\nworkload fill 1\n").is_err());
        assert!(Manifest::parse("bogus 1\n").is_err());
        assert!(Manifest::parse("sites 1\nsite 4 uds:/x\n").is_err());
    }

    #[test]
    fn protocol_config_honors_retry_flag() {
        assert!(sample().protocol_config().retry.is_some());
        let mut m = sample();
        m.retry = false;
        assert!(m.protocol_config().retry.is_none());
    }
}
