//! Architecture- and OS-specific primitives: double mappings and
//! protection changes.

use mirage_types::PageProt;

use crate::sys as libc;

/// The hardware page size; every 512-byte DSM page sits on its own
/// hardware page so `mprotect` can manage it independently.
pub const STRIDE: usize = 4096;

/// A segment's pair of mappings over one shared memory object.
///
/// The *user view*'s protection is driven by the protocol; application
/// threads touch only this view and take faults on it. The *kernel
/// view* is permanently read-write and is how the protocol engine
/// reads/writes page bytes regardless of user protection — the analogue
/// of the paper's kernel mapping pages "in system space" (§7.1
/// footnote).
#[derive(Debug)]
pub struct DoubleMapping {
    user: *mut u8,
    kernel: *mut u8,
    len: usize,
}

// SAFETY: the raw pointers refer to process-lifetime mappings created by
// `DoubleMapping::new`; access discipline (who reads/writes which view)
// is enforced by the runtime, and the mappings are valid from any
// thread.
unsafe impl Send for DoubleMapping {}
// SAFETY: as above — shared references only expose addresses; the
// runtime serializes all kernel-view data access through the per-site
// kernel thread.
unsafe impl Sync for DoubleMapping {}

impl DoubleMapping {
    /// Creates the two views over `len` bytes of fresh shared memory.
    /// The user view starts with no access (`PROT_NONE`).
    ///
    /// # Panics
    ///
    /// Panics if the kernel refuses the memfd or either mapping — an
    /// unrecoverable environment failure at setup time.
    pub fn new(len: usize) -> Self {
        // SAFETY: plain syscalls creating a new anonymous shared memory
        // object and two mappings of it; no existing memory is touched.
        unsafe {
            let fd = libc::memfd_create(c"mirage-seg".as_ptr(), 0);
            assert!(fd >= 0, "memfd_create failed: {}", errno());
            assert_eq!(
                libc::ftruncate(fd, len as libc::off_t),
                0,
                "ftruncate failed: {}",
                errno()
            );
            let user = libc::mmap(
                core::ptr::null_mut(),
                len,
                libc::PROT_NONE,
                libc::MAP_SHARED,
                fd,
                0,
            );
            assert_ne!(user, libc::MAP_FAILED, "user mmap failed: {}", errno());
            let kernel = libc::mmap(
                core::ptr::null_mut(),
                len,
                libc::PROT_READ | libc::PROT_WRITE,
                libc::MAP_SHARED,
                fd,
                0,
            );
            assert_ne!(kernel, libc::MAP_FAILED, "kernel mmap failed: {}", errno());
            // Both mappings keep the object alive; the fd may go.
            libc::close(fd);
            Self { user: user.cast(), kernel: kernel.cast(), len }
        }
    }

    /// Base address of the user view.
    pub fn user_base(&self) -> *mut u8 {
        self.user
    }

    /// Base address of the kernel view.
    pub fn kernel_base(&self) -> *mut u8 {
        self.kernel
    }

    /// Mapping length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the mapping is empty (never the case after `new`).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Applies a protocol protection to one hardware page of the user
    /// view.
    ///
    /// # Panics
    ///
    /// Panics if `mprotect` fails (invalid page index would be a runtime
    /// bug).
    pub fn protect(&self, hw_page: usize, prot: PageProt) {
        let flags = match prot {
            PageProt::None => libc::PROT_NONE,
            PageProt::Read => libc::PROT_READ,
            PageProt::ReadWrite => libc::PROT_READ | libc::PROT_WRITE,
        };
        let off = hw_page * STRIDE;
        assert!(off + STRIDE <= self.len, "page index out of mapping");
        // SAFETY: the range [user+off, user+off+STRIDE) lies within the
        // mapping created in `new`; changing its protection is exactly
        // the intended fault-driving mechanism.
        let rc = unsafe { libc::mprotect(self.user.add(off).cast(), STRIDE, flags) };
        assert_eq!(rc, 0, "mprotect failed: {}", errno());
    }

    /// Copies `data` into the page's bytes via the kernel view.
    pub fn write_page(&self, hw_page: usize, data: &[u8]) {
        let off = hw_page * STRIDE;
        assert!(off + data.len() <= self.len);
        // SAFETY: the destination lies within the always-writable kernel
        // view; the per-site kernel thread is the only writer through
        // this view, and application threads cannot hold Rust references
        // into the mapping (they use volatile raw-pointer accessors).
        unsafe {
            core::ptr::copy_nonoverlapping(data.as_ptr(), self.kernel.add(off), data.len());
        }
    }

    /// Copies the page's first `len` bytes out via the kernel view.
    pub fn read_page(&self, hw_page: usize, out: &mut [u8]) {
        let off = hw_page * STRIDE;
        assert!(off + out.len() <= self.len);
        // SAFETY: the source lies within the always-readable kernel
        // view; see `write_page` for the aliasing discipline.
        unsafe {
            core::ptr::copy_nonoverlapping(self.kernel.add(off), out.as_mut_ptr(), out.len());
        }
    }
}

impl Drop for DoubleMapping {
    fn drop(&mut self) {
        // SAFETY: unmapping the two mappings created in `new`; the
        // runtime guarantees no views outlive the cluster.
        unsafe {
            libc::munmap(self.user.cast(), self.len);
            libc::munmap(self.kernel.cast(), self.len);
        }
    }
}

/// Current `errno` (for panic messages).
pub(crate) fn errno() -> i32 {
    // SAFETY: `__errno_location` returns the calling thread's errno
    // slot, always valid.
    unsafe { *libc::__errno_location() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn double_mapping_aliases_memory() {
        let m = DoubleMapping::new(4 * STRIDE);
        m.write_page(2, &[7u8; 16]);
        let mut out = [0u8; 16];
        m.read_page(2, &mut out);
        assert_eq!(out, [7u8; 16]);
    }

    #[test]
    fn user_view_protection_changes_apply() {
        let m = DoubleMapping::new(STRIDE);
        m.write_page(0, &[42u8; 4]);
        m.protect(0, PageProt::Read);
        // SAFETY: the user view page is PROT_READ; a volatile read is
        // permitted and must observe the kernel-view write (same pages).
        let v = unsafe { core::ptr::read_volatile(m.user_base()) };
        assert_eq!(v, 42);
        m.protect(0, PageProt::ReadWrite);
        // SAFETY: now writable; write then read back through the kernel
        // view.
        unsafe { core::ptr::write_volatile(m.user_base(), 9) };
        let mut out = [0u8; 1];
        m.read_page(0, &mut out);
        assert_eq!(out[0], 9);
    }
}
