//! End-to-end tests on real memory: genuine SIGSEGVs, mprotect-driven
//! coherence, real-time Δ windows.

use std::sync::atomic::{
    AtomicBool,
    Ordering,
};
use std::sync::Arc;
use std::time::{
    Duration,
    Instant,
};

use mirage_core::ProtocolConfig;
use mirage_host::sys as libc;
use mirage_host::HostCluster;
use mirage_types::{
    Delta,
    PageNum,
};

const PG: PageNum = PageNum(0);

#[test]
fn remote_write_then_read_moves_real_pages() {
    let cluster = HostCluster::start(2, ProtocolConfig::default());
    let seg = cluster.create_segment(0, 2);
    let v0 = cluster.view(0, seg);
    let v1 = cluster.view(1, seg);
    // Site 0 (creator) writes without faulting; site 1 read-faults and
    // must observe the value after the page migrates.
    v0.write_u32(PG, 0, 0xC0FFEE);
    let t0 = std::thread::spawn(move || v1.read_u32(PG, 0));
    assert_eq!(t0.join().unwrap(), 0xC0FFEE);
}

#[test]
fn write_fault_is_classified_as_write() {
    // A blind write from a site with no copy must be granted a write
    // copy in ONE protocol round — only typed faults make that possible.
    let cluster = HostCluster::start(2, ProtocolConfig::default());
    let seg = cluster.create_segment(0, 1);
    let v1 = cluster.view(1, seg);
    let t = std::thread::spawn(move || {
        v1.write_u32(PG, 4, 77);
        v1.read_u32(PG, 4)
    });
    assert_eq!(t.join().unwrap(), 77);
    // The creator's copy is gone; reading it faults and refetches,
    // observing site 1's write (coherence on real memory).
    let v0 = cluster.view(0, seg);
    let t = std::thread::spawn(move || v0.read_u32(PG, 4));
    assert_eq!(t.join().unwrap(), 77);
}

#[test]
fn ping_pong_on_real_memory_is_coherent() {
    let cluster = HostCluster::start(2, ProtocolConfig::default());
    let seg = cluster.create_segment(0, 1);
    let a = cluster.view(0, seg);
    let b = cluster.view(1, seg);
    let cycles = 40u32;
    let t1 = std::thread::spawn(move || {
        for i in 0..cycles {
            a.write_u32(PG, 0, 2 * i + 2);
            while a.read_u32(PG, 4) != 2 * i + 3 {
                std::thread::yield_now();
            }
        }
    });
    let t2 = std::thread::spawn(move || {
        for i in 0..cycles {
            while b.read_u32(PG, 0) != 2 * i + 2 {
                std::thread::yield_now();
            }
            b.write_u32(PG, 4, 2 * i + 3);
        }
    });
    t1.join().unwrap();
    t2.join().unwrap();
}

#[test]
fn delta_window_holds_page_in_real_time() {
    // Δ = 12 ticks ≈ 200 ms: after site 1 takes the write copy, site
    // 0's read must wait out the window.
    let cluster = HostCluster::start(2, ProtocolConfig::paper(Delta(12)));
    let seg = cluster.create_segment(0, 1);
    let v0 = cluster.view(0, seg);
    let v1 = cluster.view(1, seg);
    // Site 1 grabs the write copy (waits out the creator's initial
    // window first).
    let t = std::thread::spawn(move || v1.write_u32(PG, 0, 5));
    t.join().unwrap();
    // Immediately steal back: must take ≳ the window.
    let started = Instant::now();
    let t = std::thread::spawn(move || v0.read_u32(PG, 0));
    assert_eq!(t.join().unwrap(), 5);
    let waited = started.elapsed();
    assert!(
        waited >= Duration::from_millis(120),
        "Δ window not enforced: read returned after {waited:?}"
    );
}

#[test]
fn many_pages_move_independently() {
    let cluster = HostCluster::start(2, ProtocolConfig::default());
    let seg = cluster.create_segment(0, 8);
    let v0 = cluster.view(0, seg);
    let v1 = cluster.view(1, seg);
    for p in 0..8u32 {
        v0.write_u32(PageNum(p), 0, 100 + p);
    }
    let t = std::thread::spawn(move || {
        (0..8u32).map(|p| v1.read_u32(PageNum(p), 0)).collect::<Vec<_>>()
    });
    assert_eq!(t.join().unwrap(), (0..8).map(|p| 100 + p).collect::<Vec<_>>());
}

#[test]
fn three_sites_share_read_copies_then_invalidate() {
    let cluster = HostCluster::start(3, ProtocolConfig::default());
    let seg = cluster.create_segment(0, 1);
    let v0 = cluster.view(0, seg);
    v0.write_u32(PG, 0, 1);
    // Both remote sites take read copies.
    for s in 1..3 {
        let v = cluster.view(s, seg);
        let t = std::thread::spawn(move || v.read_u32(PG, 0));
        assert_eq!(t.join().unwrap(), 1);
    }
    // Site 2 upgrades; everyone else is invalidated; new value visible
    // everywhere afterwards.
    let v2 = cluster.view(2, seg);
    let t = std::thread::spawn(move || v2.write_u32(PG, 0, 2));
    t.join().unwrap();
    for s in 0..2 {
        let v = cluster.view(s, seg);
        let t = std::thread::spawn(move || v.read_u32(PG, 0));
        assert_eq!(t.join().unwrap(), 2, "site {s} must see the new value");
    }
}

#[test]
fn concurrent_writers_serialize_without_loss() {
    // Two sites increment disjoint counters on the same page; the page
    // bounces but no update may be lost.
    let cluster = HostCluster::start(2, ProtocolConfig::default());
    let seg = cluster.create_segment(0, 1);
    let va = cluster.view(0, seg);
    let vb = cluster.view(1, seg);
    let n = 200u32;
    let ta = std::thread::spawn(move || {
        for _ in 0..n {
            let v = va.read_u32(PG, 0);
            va.write_u32(PG, 0, v + 1);
        }
    });
    let tb = std::thread::spawn(move || {
        for _ in 0..n {
            let v = vb.read_u32(PG, 64);
            vb.write_u32(PG, 64, v + 1);
        }
    });
    ta.join().unwrap();
    tb.join().unwrap();
    let check = cluster.view(0, seg);
    let t = std::thread::spawn(move || (check.read_u32(PG, 0), check.read_u32(PG, 64)));
    assert_eq!(t.join().unwrap(), (n, n), "disjoint counters must both survive");
}

#[test]
fn reference_log_populated_at_library_site() {
    let cluster = HostCluster::start(2, ProtocolConfig::default());
    let seg = cluster.create_segment(0, 1);
    let v1 = cluster.view(1, seg);
    let t = std::thread::spawn(move || v1.write_u32(PG, 0, 9));
    t.join().unwrap();
    // Library at site 0 logged site 1's request.
    let log = cluster.ref_log(0);
    assert!(!log.is_empty(), "library must log remote page requests");
}

#[test]
fn unrelated_segfault_still_crashes() {
    // Faults outside registered regions must not be swallowed. Verify in
    // a forked child so the crash doesn't kill the test runner.
    let cluster = HostCluster::start(1, ProtocolConfig::default());
    let _seg = cluster.create_segment(0, 1);
    // SAFETY: fork+waitpid to observe a signal death in the child; the
    // child immediately dereferences an unmapped address and must die
    // with SIGSEGV rather than hang in the DSM handler.
    unsafe {
        let pid = libc::fork();
        assert!(pid >= 0);
        if pid == 0 {
            let p = 0x10 as *mut u32;
            core::ptr::write_volatile(p, 1);
            libc::_exit(0); // unreachable
        }
        let mut status = 0;
        libc::waitpid(pid, &mut status, 0);
        assert!(libc::WIFSIGNALED(status), "child should die by signal");
        assert_eq!(libc::WTERMSIG(status), libc::SIGSEGV);
    }
}

#[test]
fn app_threads_dont_deadlock_under_contention() {
    // Stress: 2 sites × 2 app threads hammering one page with a global
    // deadline as the failure detector.
    let cluster = HostCluster::start(2, ProtocolConfig::default());
    let seg = cluster.create_segment(0, 1);
    let done = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for s in 0..2 {
        for t in 0..2u32 {
            let v = cluster.view(s, seg);
            let d = Arc::clone(&done);
            handles.push(std::thread::spawn(move || {
                let off = (s * 2 + t as usize) * 8;
                for i in 0..100 {
                    if d.load(Ordering::Relaxed) {
                        return;
                    }
                    v.write_u32(PG, off, i);
                    let _ = v.read_u32(PG, (off + 8) % 32);
                }
            }));
        }
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    for h in handles {
        assert!(Instant::now() < deadline, "contention stress timed out");
        h.join().unwrap();
    }
    done.store(true, Ordering::Relaxed);
}
