//! Wire-equivalence tests: the same workload over the in-process
//! channel wire, Unix-domain sockets, and TCP loopback must leave the
//! same final page contents — the transport trait is behavior-
//! preserving, and the protocol bytes are identical on every wire.

use mirage_core::{
    ProtocolConfig,
    RetryPolicy,
};
use mirage_host::workload;
use mirage_host::{
    ClusterOpts,
    HostCluster,
    WireChoice,
};
use mirage_types::Delta;

const SITES: usize = 3;
const PAGES: usize = 2;
const ROUNDS: u32 = 3;

fn cluster_config() -> ProtocolConfig {
    let mut config = ProtocolConfig::paper(Delta(1));
    config.retry = Some(RetryPolicy::default());
    config
}

/// Runs the deterministic fill workload on the given wire and returns
/// the readback checksum every site agreed on.
fn run_fill(wire: WireChoice) -> u64 {
    let cluster = HostCluster::start_with(ClusterOpts {
        sites: SITES,
        config: cluster_config(),
        wire,
        advisor: None,
    });
    let seg = cluster.create_segment(0, PAGES);
    let apps: Vec<_> = (0..SITES)
        .map(|site| {
            let v = cluster.view(site, seg);
            std::thread::spawn(move || workload::fill(&v, site, SITES, ROUNDS))
        })
        .collect();
    for app in apps {
        app.join().expect("fill worker panicked");
    }
    let sums: Vec<u64> =
        (0..SITES).map(|site| workload::readback_sum(&cluster.view(site, seg))).collect();
    assert!(sums.iter().all(|s| *s == sums[0]), "sites diverged on one wire: {sums:x?}");
    sums[0]
}

#[test]
fn channel_wire_produces_the_expected_image() {
    let expected = workload::image_sum(&workload::expected_fill(PAGES, SITES, ROUNDS));
    assert_eq!(run_fill(WireChoice::Chan), expected);
}

#[test]
fn unix_socket_wire_matches_the_channel_wire() {
    let expected = workload::image_sum(&workload::expected_fill(PAGES, SITES, ROUNDS));
    assert_eq!(run_fill(WireChoice::Uds(None)), expected);
}

#[test]
fn tcp_wire_matches_the_channel_wire() {
    let expected = workload::image_sum(&workload::expected_fill(PAGES, SITES, ROUNDS));
    assert_eq!(run_fill(WireChoice::Tcp), expected);
}
