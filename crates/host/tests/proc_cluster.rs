//! Multi-process cluster tests: real `mirage-site` OS processes over
//! Unix-domain sockets, driven by the launcher. `#[ignore]`d so the
//! default test path stays process-free; CI runs them explicitly with
//! `cargo test -p mirage-host --test proc_cluster --release -- --ignored`.

use std::path::PathBuf;
use std::time::Duration;

use mirage_host::launcher::{
    run_cluster,
    KillPlan,
    LaunchOpts,
};
use mirage_host::manifest::{
    Manifest,
    SegmentSpec,
    Workload,
};
use mirage_host::workload;
use mirage_net::transport::Endpoint;

/// The real binary, built by Cargo for this test run.
const SITE_BIN: &str = env!("CARGO_BIN_EXE_mirage-site");

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mirage-proc-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn uds_manifest(dir: &std::path::Path, sites: usize, pages: usize, load: Workload) -> Manifest {
    Manifest {
        sites,
        endpoints: (0..sites)
            .map(|i| Endpoint::Uds(dir.join(format!("site{i}.sock"))))
            .collect(),
        delta_ticks: 1,
        retry: true,
        segments: vec![SegmentSpec { lib: 0, pages }],
        workload: load,
    }
}

fn opts(manifest: Manifest, dir: PathBuf, kill: Option<KillPlan>) -> LaunchOpts {
    LaunchOpts {
        manifest,
        dir,
        site_bin: PathBuf::from(SITE_BIN),
        kill,
        deadline: Duration::from_secs(90),
    }
}

/// The per-process readback reply folds segment checksums as
/// `acc ^ sum.rotate_left(17)`; with one segment that is just the
/// rotation.
fn folded(sum: u64) -> u64 {
    sum.rotate_left(17)
}

/// Acceptance: a 3-process UDS cluster runs the production protocol
/// end-to-end and lands on the exact final page contents the workload
/// mathematically must produce — the same image the in-process channel
/// cluster produces (pinned to `expected_fill` in `host_wires.rs`).
#[test]
#[ignore = "spawns real processes; run explicitly (CI cluster job)"]
fn three_process_uds_fill_matches_expected_image() {
    const SITES: usize = 3;
    const PAGES: usize = 2;
    const ROUNDS: u32 = 4;
    let dir = scratch("fill");
    let manifest = uds_manifest(&dir, SITES, PAGES, Workload::Fill { rounds: ROUNDS });
    let report = run_cluster(&opts(manifest, dir, None)).expect("cluster run");

    for s in &report.sites {
        assert_eq!(s.exit, Some(0), "site {} exited dirty: {:?}", s.site, s.exit);
        assert!(!s.killed);
    }
    assert!(report.coherent, "sites diverged: {:?}", report.sites);
    let expected = folded(workload::image_sum(&workload::expected_fill(PAGES, SITES, ROUNDS)));
    assert_eq!(report.sum, Some(expected), "coherent but on the wrong image");
    // The wire really carried protocol traffic.
    assert!(report.metrics.contains("s0.wire.tx.frames"), "metrics:\n{}", report.metrics);
}

/// Kill -9 one *reader* process mid-run, restart it with a bumped
/// incarnation: pending grants retransmit via the retry chains, the
/// incarnation bump severs stale circuits, and every survivor (plus the
/// restarted member) converges on the same page state.
#[test]
#[ignore = "spawns real processes; run explicitly (CI cluster job)"]
fn kill_and_restart_reader_over_uds_reconverges() {
    const SITES: usize = 3;
    const TARGET: u32 = 80;
    let dir = scratch("kill");
    let manifest = uds_manifest(&dir, SITES, 1, Workload::Readers { target: TARGET });
    // Site 0 is writer and library; site 2 is a pure reader — killing it
    // loses no page authority, so the survivors' state stays whole and
    // the fresh incarnation re-fetches everything through the library.
    let kill = KillPlan {
        site: 2,
        after: Duration::from_millis(60),
        restart_after: Some(Duration::from_millis(60)),
    };
    let report = run_cluster(&opts(manifest, dir, Some(kill))).expect("cluster run");

    let victim = &report.sites[2];
    assert!(victim.killed);
    assert_eq!(victim.incarnation, 2);
    for s in &report.sites {
        assert_eq!(s.exit, Some(0), "site {} exited dirty: {:?}", s.site, s.exit);
    }
    assert!(report.coherent, "post-restart divergence: {:?}", report.sites);
    // Everyone read the final counter: page 0 cell 0 == TARGET, rest 0.
    let mut image = vec![0u8; mirage_types::PAGE_SIZE];
    image[0..4].copy_from_slice(&TARGET.to_le_bytes());
    assert_eq!(report.sum, Some(folded(workload::image_sum(&image))));
}
