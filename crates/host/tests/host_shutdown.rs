//! Regression tests for host kernel shutdown (satellite of the
//! real-transport PR): an application thread blocked in the fault
//! handler must never outlive the cluster. Before the poison-based
//! teardown, a kernel exiting mid-service left its mailbox slot stuck
//! short of `GRANTED` and the faulting thread spun forever, so
//! `HostCluster` teardown deadlocked on the join.

use std::sync::mpsc;
use std::time::Duration;

use mirage_core::ProtocolConfig;
use mirage_host::HostCluster;
use mirage_types::PageNum;

const PG: PageNum = PageNum(0);

/// An app thread faulting against a *dead* library site is released by
/// cluster teardown instead of hanging in the handler's spin loop.
#[test]
fn teardown_releases_thread_blocked_on_dead_library_site() {
    let cluster = HostCluster::start(2, ProtocolConfig::default());
    let seg = cluster.create_segment(0, 1);
    let v1 = cluster.view(1, seg);

    // Kill the library site first; nobody can answer site 1's fault.
    cluster.stop_site(0);

    let (done_tx, done_rx) = mpsc::channel();
    let app = std::thread::spawn(move || {
        // Read-fault on a page whose only authority is gone. With no
        // retry policy this request is never answered; only the poison
        // path can release the handler.
        let v = v1.read_u32(PG, 0);
        let _ = done_tx.send(v);
    });

    // Give the fault time to post and go in-service, then tear down.
    std::thread::sleep(Duration::from_millis(100));
    drop(cluster);

    // The blocked thread must finish promptly (the value itself is
    // whatever the local frame held — teardown opens pages, it does
    // not invent coherence).
    done_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("app thread still blocked after cluster teardown");
    app.join().expect("app thread panicked");
}

/// Plain drop with idle app threads also joins cleanly (no slot was
/// mid-service); guards the common path around the same teardown code.
#[test]
fn idle_cluster_drop_is_clean() {
    let cluster = HostCluster::start(3, ProtocolConfig::default());
    let seg = cluster.create_segment(0, 2);
    let v2 = cluster.view(2, seg);
    let t = std::thread::spawn(move || {
        v2.write_u32(PG, 0, 7);
        v2.read_u32(PG, 0)
    });
    assert_eq!(t.join().unwrap(), 7);
    drop(cluster);
}

/// `stop_site` is idempotent and a stopped site's faults cannot wedge
/// later teardown either.
#[test]
fn stop_site_twice_then_drop() {
    let cluster = HostCluster::start(2, ProtocolConfig::default());
    let _seg = cluster.create_segment(0, 1);
    cluster.stop_site(1);
    cluster.stop_site(1);
    drop(cluster);
}
