//! Live library migration on the host runtime: the §9 ref-log advisor
//! watches real per-site fault streams and moves the library role
//! toward the hot site mid-run, over a real wire.

use std::time::{
    Duration,
    Instant,
};

use mirage_core::{
    ProtocolConfig,
    RetryPolicy,
};
use mirage_host::{
    AdvisorOpts,
    ClusterOpts,
    HostCluster,
    WireChoice,
};
use mirage_types::{
    Delta,
    PageNum,
    SiteId,
};

fn config() -> ProtocolConfig {
    let mut config = ProtocolConfig::paper(Delta(1));
    config.retry = Some(RetryPolicy::default());
    config
}

/// Manually handing the library role to another site keeps the segment
/// coherent: requests from the old home are redirected (epoch stubs)
/// and served by the new home.
#[test]
fn manual_migration_keeps_segment_coherent() {
    let cluster = HostCluster::start(2, config());
    let seg = cluster.create_segment(0, 1);
    let v0 = cluster.view(0, seg);
    let v1 = cluster.view(1, seg);
    v0.write_u32(PageNum(0), 0, 11);
    let t = std::thread::spawn(move || v1.read_u32(PageNum(0), 0));
    assert_eq!(t.join().unwrap(), 11);

    cluster.migrate(seg, 1);
    std::thread::sleep(Duration::from_millis(50));

    // Both directions still work with the library at site 1.
    let v1 = cluster.view(1, seg);
    let t = std::thread::spawn(move || v1.write_u32(PageNum(0), 4, 22));
    t.join().unwrap();
    let v0 = cluster.view(0, seg);
    let t = std::thread::spawn(move || v0.read_u32(PageNum(0), 4));
    assert_eq!(t.join().unwrap(), 22);
}

/// H2 in miniature: a hot remote site sweeps the segment, its requests
/// pile up in the library's §9 reference log, and the host advisor
/// migrates the library role to it — unprompted.
#[test]
fn advisor_follows_the_hot_site() {
    const PAGES: usize = 16;
    let cluster = HostCluster::start_with(ClusterOpts {
        sites: 3,
        config: config(),
        wire: WireChoice::Chan,
        advisor: Some(AdvisorOpts { min_requests: 4, interval: Duration::from_millis(50) }),
    });
    let seg = cluster.create_segment(0, PAGES);

    // Site 1 write-faults every page: 16 requests from site 1, zero
    // from anyone else.
    let v1 = cluster.view(1, seg);
    let hot = std::thread::spawn(move || {
        for p in 0..PAGES as u32 {
            v1.write_u32(PageNum(p), 0, 0x401 + p);
        }
    });
    hot.join().unwrap();

    let deadline = Instant::now() + Duration::from_secs(10);
    while cluster.migrations().is_empty() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    let moves = cluster.migrations();
    assert!(!moves.is_empty(), "advisor never moved the library");
    assert_eq!(moves[0].seg, seg);
    assert_eq!(moves[0].from, SiteId(0));
    assert_eq!(moves[0].to, SiteId(1), "library moved to the wrong site");
    assert!(moves[0].requests >= 4);

    // The migrated cluster still serves everyone.
    let v2 = cluster.view(2, seg);
    let t = std::thread::spawn(move || v2.read_u32(PageNum(3), 0));
    assert_eq!(t.join().unwrap(), 0x404);
}
