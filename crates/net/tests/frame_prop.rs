//! Property tests for the stream frame codec and connect handshake.
//!
//! Four properties, each over deterministic randomized inputs:
//!
//! 1. **Round-trip**: any batch of frames, pushed in arbitrary chunk
//!    sizes, decodes back to the exact frames in order.
//! 2. **Truncation**: a strict prefix of a valid stream never yields a
//!    frame beyond those fully contained in it, and never panics — the
//!    decoder just waits for more bytes.
//! 3. **Bit-flip**: flipping any single bit in a frame either surfaces
//!    as a codec error (connection drop) or leaves earlier frames
//!    intact; a corrupt frame is never delivered as valid with altered
//!    contents accepted silently. Payload and sequence corruption is
//!    always caught by the whole-frame checksum.
//! 4. **Mid-frame reconnect**: cutting the stream inside a frame and
//!    `reset()`-ing the decoder (what a reader thread does when a new
//!    connection replaces a broken one) never panics and resumes clean
//!    framing from the next frame boundary.
//!
//! The handshake gets the same treatment: round-trip, truncation, and
//! single-bit magic corruption.

use mirage_net::frame::{
    decode_hello,
    encode_frame,
    encode_hello,
    frame_sum,
    Frame,
    FrameDecoder,
    Hello,
    HELLO_LEN,
};
use mirage_types::{
    Prng,
    SiteId,
};

const SEED: u64 = 0xF2A7E5;
const CASES: usize = 200;

/// A randomized batch of frames plus its encoded stream.
fn stream_case(r: &mut Prng) -> (Vec<Frame>, Vec<u8>) {
    let n = 1 + r.below(6) as usize;
    let mut frames = Vec::with_capacity(n);
    let mut wire = Vec::new();
    for i in 0..n {
        let len = r.below(300) as usize;
        let payload: Vec<u8> = (0..len).map(|_| r.next_u32() as u8).collect();
        let seq = i as u64 + r.below(1000);
        encode_frame(seq, &payload, &mut wire);
        frames.push(Frame { seq, payload });
    }
    (frames, wire)
}

/// Decodes `wire` in chunks of randomized size, collecting frames until
/// the input is exhausted or an error stops the stream.
fn decode_chunked(r: &mut Prng, wire: &[u8]) -> Result<Vec<Frame>, ()> {
    let mut d = FrameDecoder::new();
    let mut out = Vec::new();
    let mut off = 0usize;
    while off < wire.len() {
        let take = (1 + r.below(97) as usize).min(wire.len() - off);
        d.push(&wire[off..off + take]);
        off += take;
        loop {
            match d.next_frame() {
                Ok(Some(f)) => out.push(f),
                Ok(None) => break,
                Err(_) => return Err(()),
            }
        }
    }
    Ok(out)
}

#[test]
fn round_trip_survives_arbitrary_chunking() {
    let mut r = Prng::new(SEED);
    for _ in 0..CASES {
        let (frames, wire) = stream_case(&mut r);
        let got = decode_chunked(&mut r, &wire).expect("clean stream decodes");
        assert_eq!(got, frames);
    }
}

#[test]
fn strict_prefix_never_yields_a_partial_frame() {
    let mut r = Prng::new(SEED ^ 1);
    for _ in 0..CASES {
        let (frames, wire) = stream_case(&mut r);
        let cut = r.below(wire.len() as u64) as usize;
        let got = decode_chunked(&mut r, &wire[..cut]).expect("prefix never errors");
        // Every frame produced from the prefix must be a real frame, in
        // order from the front — never an invented or reordered one.
        assert!(got.len() <= frames.len());
        assert_eq!(got.as_slice(), &frames[..got.len()]);
        // And the cut frame itself must not have come out.
        let mut consumed = 0usize;
        for f in &got {
            consumed += 4 + 16 + f.payload.len();
        }
        assert!(consumed <= cut, "decoder fabricated bytes past the cut");
    }
}

#[test]
fn single_bit_flip_never_panics_and_never_corrupts_a_payload() {
    let mut r = Prng::new(SEED ^ 2);
    for _ in 0..CASES {
        let (frames, wire) = stream_case(&mut r);
        let bit = r.below(8 * wire.len() as u64) as usize;
        let mut bad = wire.clone();
        bad[bit / 8] ^= 1 << (bit % 8);
        // Decode byte-at-a-time: worst case for incremental state.
        let mut d = FrameDecoder::new();
        let mut got: Vec<Frame> = Vec::new();
        let mut errored = false;
        'feed: for b in &bad {
            d.push(core::slice::from_ref(b));
            loop {
                match d.next_frame() {
                    Ok(Some(f)) => got.push(f),
                    Ok(None) => break,
                    Err(_) => {
                        errored = true;
                        break 'feed;
                    }
                }
            }
        }
        // Frames decoded before the flip's frame are untouched.
        let prefix_ok = got.iter().zip(frames.iter()).take_while(|(g, f)| g == f).count();
        for (g, f) in got.iter().zip(frames.iter()).take(prefix_ok) {
            assert_eq!(g, f);
        }
        // Any frame that differs from the original batch must still be
        // internally consistent (checksum held), meaning only a length
        // split changed framing — payload/seq corruption cannot pass.
        for g in &got {
            assert_eq!(frame_sum(g.seq, &g.payload), frame_sum(g.seq, &g.payload));
        }
        // A flip inside a frame's seq/sum/payload region must error or
        // drop that frame, never deliver it altered: check that no
        // delivered frame claims a seq from the batch with a different
        // payload.
        for g in &got {
            if let Some(orig) = frames.iter().find(|f| f.seq == g.seq) {
                if g.payload != orig.payload {
                    // Only acceptable if the flip moved a frame boundary
                    // and this "frame" passed its own checksum — which
                    // requires the flip to be inside this reconstructed
                    // frame's bytes and survive FNV-1a. Treat as failure:
                    panic!("corrupt payload delivered for seq {}", g.seq);
                }
            }
        }
        let _ = errored;
    }
}

#[test]
fn mid_frame_reconnect_resets_cleanly() {
    let mut r = Prng::new(SEED ^ 3);
    for _ in 0..CASES {
        let (frames_a, wire_a) = stream_case(&mut r);
        let (frames_b, wire_b) = stream_case(&mut r);
        // Cut connection A somewhere strictly inside its stream.
        let cut = 1 + r.below(wire_a.len() as u64 - 1) as usize;
        let mut d = FrameDecoder::new();
        d.push(&wire_a[..cut]);
        let mut before = Vec::new();
        while let Ok(Some(f)) = d.next_frame() {
            before.push(f);
        }
        assert!(before.len() <= frames_a.len());
        assert_eq!(before.as_slice(), &frames_a[..before.len()]);
        // Connection replaced: reset, then the new stream decodes whole.
        d.reset();
        assert_eq!(d.buffered(), 0);
        d.push(&wire_b);
        let mut after = Vec::new();
        loop {
            match d.next_frame() {
                Ok(Some(f)) => after.push(f),
                Ok(None) => break,
                Err(e) => panic!("fresh stream after reset must decode: {e:?}"),
            }
        }
        assert_eq!(after, frames_b);
    }
}

#[test]
fn hello_truncation_and_bit_flips_never_panic() {
    let mut r = Prng::new(SEED ^ 4);
    for _ in 0..CASES {
        let h = Hello { from: SiteId(r.below(2048) as u16), incarnation: r.next_u64() };
        let enc = encode_hello(&h);
        assert_eq!(decode_hello(&enc).unwrap(), h);
        // Every strict prefix is rejected.
        for cut in 0..HELLO_LEN {
            assert!(decode_hello(&enc[..cut]).is_err());
        }
        // A flip in the magic is rejected; a flip elsewhere decodes to a
        // *different* hello, never panics, never equals the original.
        let bit = r.below(8 * HELLO_LEN as u64) as usize;
        let mut bad = enc;
        bad[bit / 8] ^= 1 << (bit % 8);
        match decode_hello(&bad) {
            Ok(other) => assert_ne!(other, h, "flip must change the decoded hello"),
            Err(_) => assert!(bit / 8 < 4, "only magic flips may reject"),
        }
    }
}
