//! `CircuitTable` verdicts under misbehaving delivery: reordering,
//! duplication, gaps, declared losses, and crash-induced resets — the
//! recoverable-signal contract the simulator's fault layer builds on.

use mirage_net::{
    CircuitTable,
    Verdict,
};
use mirage_types::SiteId;

const A: SiteId = SiteId(0);
const B: SiteId = SiteId(1);

#[test]
fn in_order_stream_is_all_in_order() {
    let mut sender = CircuitTable::new();
    let mut receiver = CircuitTable::new();
    for _ in 0..100 {
        let seq = sender.stamp_seq(B);
        assert_eq!(receiver.check_seq(A, seq), Verdict::InOrder);
    }
    assert_eq!(sender.sent_to(B), 100);
    assert_eq!(receiver.received_from(A), 100);
}

#[test]
fn reordered_pair_is_gap_then_in_order_then_release() {
    let mut receiver = CircuitTable::new();
    // Messages 0 and 1 swap on the wire: 1 arrives first.
    assert_eq!(receiver.check_seq(A, 1), Verdict::Gap { expected: 0, got: 1 });
    // The gap verdict must NOT advance the circuit: 0 is still expected.
    assert_eq!(receiver.check_seq(A, 0), Verdict::InOrder);
    // The held-back 1 is now deliverable.
    assert_eq!(receiver.check_seq(A, 1), Verdict::InOrder);
}

#[test]
fn duplicates_are_flagged_at_any_distance() {
    let mut receiver = CircuitTable::new();
    for seq in 0..5 {
        assert_eq!(receiver.check_seq(A, seq), Verdict::InOrder);
    }
    // Immediate duplicate of the latest message.
    assert_eq!(receiver.check_seq(A, 4), Verdict::Duplicate);
    // Stale duplicate from far back.
    assert_eq!(receiver.check_seq(A, 0), Verdict::Duplicate);
    // Duplicates never advance the circuit.
    assert_eq!(receiver.check_seq(A, 5), Verdict::InOrder);
}

#[test]
fn gap_reports_expected_and_got() {
    let mut receiver = CircuitTable::new();
    assert_eq!(receiver.check_seq(A, 0), Verdict::InOrder);
    assert_eq!(receiver.check_seq(A, 7), Verdict::Gap { expected: 1, got: 7 });
    // Re-presenting the same gapped message repeats the verdict (the
    // transport may retry delivery while holding it back).
    assert_eq!(receiver.check_seq(A, 7), Verdict::Gap { expected: 1, got: 7 });
}

#[test]
fn advance_to_declares_losses_and_releases_the_queue() {
    let mut receiver = CircuitTable::new();
    assert_eq!(receiver.check_seq(A, 0), Verdict::InOrder);
    // 1 and 2 are lost; 3 and 4 arrive and are held back.
    assert_eq!(receiver.check_seq(A, 3), Verdict::Gap { expected: 1, got: 3 });
    assert_eq!(receiver.check_seq(A, 4), Verdict::Gap { expected: 1, got: 4 });
    // The gap timer fires: declare everything before 3 lost.
    receiver.advance_to(A, 3);
    assert_eq!(receiver.check_seq(A, 3), Verdict::InOrder);
    assert_eq!(receiver.check_seq(A, 4), Verdict::InOrder);
    // A lost message limping in late is now a duplicate, not a rewind.
    assert_eq!(receiver.check_seq(A, 1), Verdict::Duplicate);
}

#[test]
fn advance_to_never_moves_backwards() {
    let mut receiver = CircuitTable::new();
    for seq in 0..10 {
        assert_eq!(receiver.check_seq(A, seq), Verdict::InOrder);
    }
    receiver.advance_to(A, 3); // no-op: expectation is already 10
    assert_eq!(receiver.check_seq(A, 9), Verdict::Duplicate);
    assert_eq!(receiver.check_seq(A, 10), Verdict::InOrder);
}

#[test]
fn reset_peer_severs_both_directions() {
    let mut table = CircuitTable::new();
    // Outbound toward B and inbound from B both have history.
    assert_eq!(table.stamp_seq(B), 0);
    assert_eq!(table.stamp_seq(B), 1);
    assert_eq!(table.check_seq(B, 0), Verdict::InOrder);
    table.reset_peer(B);
    // Fresh circuits: sequencing restarts from zero in both directions.
    assert_eq!(table.stamp_seq(B), 0);
    assert_eq!(table.check_seq(B, 0), Verdict::InOrder);
    assert_eq!(table.sent_to(B), 1);
    assert_eq!(table.received_from(B), 1);
}

#[test]
fn reset_peer_leaves_other_circuits_alone() {
    let c = SiteId(2);
    let mut table = CircuitTable::new();
    assert_eq!(table.stamp_seq(B), 0);
    assert_eq!(table.stamp_seq(c), 0);
    assert_eq!(table.check_seq(c, 0), Verdict::InOrder);
    table.reset_peer(B);
    // The circuit to/from site 2 keeps its history.
    assert_eq!(table.stamp_seq(c), 1);
    assert_eq!(table.check_seq(c, 1), Verdict::InOrder);
    assert_eq!(table.check_seq(c, 0), Verdict::Duplicate);
}

#[test]
fn interleaved_sources_keep_independent_sequences() {
    let c = SiteId(2);
    let mut receiver = CircuitTable::new();
    assert_eq!(receiver.check_seq(A, 0), Verdict::InOrder);
    assert_eq!(receiver.check_seq(c, 0), Verdict::InOrder);
    assert_eq!(receiver.check_seq(A, 1), Verdict::InOrder);
    // A gap on one source does not disturb the other.
    assert_eq!(receiver.check_seq(c, 5), Verdict::Gap { expected: 1, got: 5 });
    assert_eq!(receiver.check_seq(A, 2), Verdict::InOrder);
}
