//! Property tests for the wire codec, at the `mirage-net` layer.
//!
//! Three properties, each over deterministic randomized inputs:
//!
//! 1. **Round-trip**: every encodable value decodes back to itself.
//! 2. **Truncation**: any strict prefix of a valid encoding is rejected
//!    with an error — never a panic, never a silently short value.
//! 3. **Corruption**: flipping any single bit of a valid encoding never
//!    panics the decoder; when the corrupted bytes still decode, the
//!    result re-encodes canonically (decode ∘ encode is the identity on
//!    whatever the decoder accepts).
//!
//! The protocol-message layer gets the same treatment in
//! `mirage-core/tests/codec_prop.rs`; this suite pins the primitive and
//! container codecs that layer is built from.

use mirage_net::wire::{
    from_bytes,
    to_bytes,
    Wire,
};
use mirage_types::{
    Access,
    Delta,
    PageNum,
    PageProt,
    Pid,
    Prng,
    SegmentId,
    SimDuration,
    SiteId,
    SiteSet,
};

const SEED: u64 = 0x3177E57;
const CASES: usize = 400;

fn site(r: &mut Prng) -> SiteId {
    SiteId(r.below(64) as u16)
}

fn site_set(r: &mut Prng) -> SiteSet {
    let n = r.below(10);
    (0..n).map(|_| site(r)).collect()
}

/// A site id anywhere in a 2,048-site world — half the draws land at or
/// beyond the extended-encoding boundary (site 63).
fn wide_site(r: &mut Prng) -> SiteId {
    SiteId(r.below(2048) as u16)
}

/// A set sampled from a 2,048-site world: mixes the legacy inline range
/// with chunked members, including the occasional dense run that spans
/// several chunks.
fn wide_site_set(r: &mut Prng) -> SiteSet {
    let mut set: SiteSet = (0..r.below(12)).map(|_| wide_site(r)).collect();
    if r.below(4) == 0 {
        // A dense run straddling the boundary exercises carry between
        // the inline word and the first chunks.
        let start = r.below(120) as u16;
        for i in 0..r.below(80) as u16 {
            set.insert(SiteId(start + i));
        }
    }
    set
}

/// One randomized value of a randomly chosen wire type, pre-encoded.
/// Returned as (encoding, round-trip check) so each property can reuse
/// the same generator.
fn encoded_case(r: &mut Prng) -> Vec<u8> {
    fn enc<T: Wire + PartialEq + core::fmt::Debug>(v: T) -> Vec<u8> {
        let bytes = to_bytes(&v);
        let back: T = from_bytes(&bytes).expect("fresh encoding must decode");
        assert_eq!(back, v, "round-trip");
        bytes
    }
    match r.below(14) {
        0 => enc(r.next_u32() as u8),
        1 => enc(r.next_u32() as u16),
        2 => enc(r.next_u32()),
        3 => enc(r.next_u64()),
        4 => enc(site(r)),
        5 => enc(PageNum(r.next_u32())),
        6 => enc(SegmentId::new(site(r), r.next_u32())),
        7 => enc(Pid::new(site(r), r.next_u32())),
        8 => enc(if r.flip() { Access::Read } else { Access::Write }),
        9 => enc(match r.below(3) {
            0 => PageProt::None,
            1 => PageProt::Read,
            _ => PageProt::ReadWrite,
        }),
        10 => enc(site_set(r)),
        11 => enc(SimDuration(r.next_u64())),
        12 => enc(wide_site_set(r)),
        _ => enc((0..r.below(48)).map(|_| r.next_u32() as u8).collect::<Vec<u8>>()),
    }
}

#[test]
fn every_value_round_trips() {
    // The round-trip assertion lives inside `encoded_case`.
    let mut r = Prng::new(SEED);
    for _ in 0..CASES {
        let _ = encoded_case(&mut r);
    }
    // A couple of edge values the generator is unlikely to hit.
    let empty: Vec<u8> = Vec::new();
    assert_eq!(from_bytes::<Vec<u8>>(&to_bytes(&empty)).expect("empty vec"), empty);
    assert_eq!(
        from_bytes::<Delta>(&to_bytes(&Delta(u32::MAX))).expect("delta"),
        Delta(u32::MAX)
    );
    let none: Option<u32> = None;
    assert_eq!(from_bytes::<Option<u32>>(&to_bytes(&none)).expect("none"), none);
}

#[test]
fn every_strict_prefix_is_rejected() {
    // Every strict prefix of a valid encoding must fail to decode
    // *under the same type* — exhaustive over prefixes, typed via a
    // helper so the generator and the check agree on the type.
    fn check_prefixes<T: Wire + PartialEq + core::fmt::Debug>(v: T) {
        let bytes = to_bytes(&v);
        for cut in 0..bytes.len() {
            assert!(
                from_bytes::<T>(&bytes[..cut]).is_err(),
                "strict prefix ({cut}/{} bytes) must not decode",
                bytes.len()
            );
        }
    }
    let mut r = Prng::new(SEED ^ 1);
    for _ in 0..CASES {
        match r.below(9) {
            0 => check_prefixes(r.next_u32() as u16),
            1 => check_prefixes(r.next_u32()),
            2 => check_prefixes(r.next_u64()),
            3 => check_prefixes(SegmentId::new(site(&mut r), r.next_u32())),
            4 => check_prefixes(Pid::new(site(&mut r), r.next_u32())),
            5 => check_prefixes(site_set(&mut r)),
            6 => check_prefixes(SimDuration(r.next_u64())),
            7 => check_prefixes(wide_site_set(&mut r)),
            _ => check_prefixes((1..=r.below(48)).map(|i| i as u8).collect::<Vec<u8>>()),
        }
    }
}

#[test]
fn single_bit_flips_never_panic_and_stay_canonical() {
    let mut r = Prng::new(SEED ^ 2);
    for _ in 0..CASES {
        let site_set_bytes = to_bytes(&site_set(&mut r));
        for byte in 0..site_set_bytes.len() {
            for bit in 0..8 {
                let mut corrupt = site_set_bytes.clone();
                corrupt[byte] ^= 1 << bit;
                // A flipped length prefix or discriminant must error; a
                // flipped payload may still decode. Either way: no
                // panic, and anything accepted re-encodes to itself.
                if let Ok(v) = from_bytes::<SiteSet>(&corrupt) {
                    let bytes2 = to_bytes(&v);
                    let v2: SiteSet = from_bytes(&bytes2).expect("canonical re-encode");
                    assert_eq!(v2, v);
                }
            }
        }
    }
}

#[test]
fn wide_site_sets_round_trip_at_every_scale() {
    // Sweeps world sizes across the inline/chunked boundary: for each n
    // in 1..=2048 (powers of two plus the boundary neighbourhood), a
    // set containing the extremes, a random sample, and the full world
    // all round-trip.
    let mut r = Prng::new(SEED ^ 3);
    let sizes = [1usize, 2, 62, 63, 64, 65, 127, 128, 129, 256, 1024, 2048];
    for &n in &sizes {
        let extremes: SiteSet = [0, n - 1, n / 2].iter().map(|&i| SiteId(i as u16)).collect();
        let sampled: SiteSet = (0..16).map(|_| SiteId(r.below(n as u64) as u16)).collect();
        let full: SiteSet = (0..n).map(|i| SiteId(i as u16)).collect();
        for set in [extremes, sampled, full] {
            let back: SiteSet = from_bytes(&to_bytes(&set)).expect("decode");
            assert_eq!(back, set, "world size {n}");
        }
    }
}

#[test]
fn wide_site_set_corruption_never_panics() {
    // The extended encoding has more structure to corrupt (flag bit,
    // chunk count, chunk payloads) than the fixed form the small-set
    // test covers — every single-bit flip must decode or error, never
    // panic, and anything accepted must re-encode canonically.
    let mut r = Prng::new(SEED ^ 4);
    for _ in 0..64 {
        let bytes = to_bytes(&wide_site_set(&mut r));
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[byte] ^= 1 << bit;
                if let Ok(v) = from_bytes::<SiteSet>(&corrupt) {
                    let v2: SiteSet = from_bytes(&to_bytes(&v)).expect("canonical");
                    assert_eq!(v2, v);
                }
            }
        }
    }
}

#[test]
fn small_sets_keep_the_legacy_fixed_u64_encoding() {
    // Compatibility fast path: any set whose members are all below the
    // flag bit must encode exactly as the historical little-endian u64
    // mask — byte-identical, 8 bytes, no extension marker.
    let mut r = Prng::new(SEED ^ 5);
    for _ in 0..CASES {
        let set: SiteSet = (0..r.below(10)).map(|_| SiteId(r.below(63) as u16)).collect();
        let mut mask = 0u64;
        for s in set.iter() {
            mask |= 1 << s.index();
        }
        let bytes = to_bytes(&set);
        assert_eq!(bytes, mask.to_le_bytes().to_vec(), "legacy format preserved");
    }
    // And the boundary case: site 63 itself must NOT use the fast path
    // (bit 63 is the extension flag).
    let boundary = SiteSet::from_raw_parts(0, Vec::new());
    assert_eq!(to_bytes(&boundary).len(), 8, "empty set is a plain zero word");
    let with63: SiteSet = [SiteId(63)].into_iter().collect();
    let bytes = to_bytes(&with63);
    assert!(bytes.len() > 8, "site 63 forces the extended form");
    assert_eq!(from_bytes::<SiteSet>(&bytes).expect("decode"), with63);
}

#[test]
fn bounded_length_prefixes_cannot_overallocate() {
    // A corrupted `Vec<u8>` length prefix claiming 4 GiB must be caught
    // by the remaining-bytes check, not trusted with an allocation.
    let mut bytes = to_bytes(&vec![1u8, 2, 3]);
    bytes[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(from_bytes::<Vec<u8>>(&bytes).is_err());
}
