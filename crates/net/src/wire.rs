//! A compact binary wire codec.
//!
//! The Locus network layer put fixed binary structures on the Ethernet;
//! this module provides the equivalent: a small, explicit, versionless
//! binary format with no self-description overhead. The codec is used by
//! the host runtime's transport and benchmarked by
//! `mirage-bench/benches/codec.rs`.
//!
//! All integers are little-endian. Variable-length fields are
//! length-prefixed with a `u32`.

use mirage_types::{
    pagediff::MAX_DIFF_SPANS,
    Access,
    Delta,
    DiffSpan,
    MirageError,
    PageDiff,
    PageNum,
    PageProt,
    Pid,
    Result,
    SegmentId,
    SimDuration,
    SiteId,
    SiteSet,
};

/// A type that can be encoded to and decoded from the wire format.
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Decodes a value from the front of `buf`, advancing it.
    ///
    /// # Errors
    ///
    /// Returns [`MirageError::Codec`] if the buffer is truncated or a
    /// discriminant is unknown.
    fn decode(buf: &mut &[u8]) -> Result<Self>;
}

/// Checks that at least `n` bytes remain before a fixed-size read.
fn need(buf: &&[u8], n: usize) -> Result<()> {
    if buf.len() < n {
        Err(MirageError::Codec("truncated message"))
    } else {
        Ok(())
    }
}

/// Reads `N` bytes from the front of `buf`, advancing it.
fn take<const N: usize>(buf: &mut &[u8]) -> [u8; N] {
    let (head, rest) = buf.split_at(N);
    *buf = rest;
    head.try_into().expect("length checked by `need`")
}

impl Wire for u8 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(*self);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        need(buf, 1)?;
        Ok(take::<1>(buf)[0])
    }
}

impl Wire for u16 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        need(buf, 2)?;
        Ok(u16::from_le_bytes(take::<2>(buf)))
    }
}

impl Wire for u32 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        need(buf, 4)?;
        Ok(u32::from_le_bytes(take::<4>(buf)))
    }
}

impl Wire for u64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        need(buf, 8)?;
        Ok(u64::from_le_bytes(take::<8>(buf)))
    }
}

impl Wire for SiteId {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        Ok(SiteId(u16::decode(buf)?))
    }
}

impl Wire for PageNum {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        Ok(PageNum(u32::decode(buf)?))
    }
}

impl Wire for SegmentId {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.library.encode(buf);
        self.serial.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        Ok(SegmentId { library: SiteId::decode(buf)?, serial: u32::decode(buf)? })
    }
}

impl Wire for Pid {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.site.encode(buf);
        self.local.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        Ok(Pid { site: SiteId::decode(buf)?, local: u32::decode(buf)? })
    }
}

impl Wire for Access {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(match self {
            Access::Read => 0,
            Access::Write => 1,
        });
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        match u8::decode(buf)? {
            0 => Ok(Access::Read),
            1 => Ok(Access::Write),
            _ => Err(MirageError::Codec("bad Access discriminant")),
        }
    }
}

impl Wire for PageProt {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(match self {
            PageProt::None => 0,
            PageProt::Read => 1,
            PageProt::ReadWrite => 2,
        });
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        match u8::decode(buf)? {
            0 => Ok(PageProt::None),
            1 => Ok(PageProt::Read),
            2 => Ok(PageProt::ReadWrite),
            _ => Err(MirageError::Codec("bad PageProt discriminant")),
        }
    }
}

/// Continuation flag of the variable-length [`SiteSet`] encoding: bit 63
/// of the leading word. Clear means the word *is* the whole set (the
/// historical fixed-`u64` format, byte-identical for any set whose
/// members all fit below the flag bit); set means a chunked tail
/// follows.
const SITE_SET_EXTENDED: u64 = 1 << 63;

/// Upper bound on the chunk count of an extended [`SiteSet`] encoding.
/// Sites are `u16`, so no honest encoder needs more than
/// `ceil((65536 - 63) / 64) = 1024` chunks; a larger claim is garbage
/// and must fail before allocation, like the `Vec<u8>` length guard.
const SITE_SET_MAX_CHUNKS: usize = 1024;

impl Wire for SiteSet {
    /// Variable-length encoding. Sets whose members are all `< 63`
    /// encode as the historical fixed 8-byte `u64` mask (bit 63 clear).
    /// Any member `≥ 63` switches to the extended form: the low word
    /// carries sites `0..63` plus the `SITE_SET_EXTENDED` flag, then a
    /// `u16` chunk count, then `u64` chunks where chunk `k` bit `b` is
    /// site `63 + 64k + b`.
    fn encode(&self, buf: &mut Vec<u8>) {
        let lo = self.inline_word() & !SITE_SET_EXTENDED;
        let tail_empty =
            self.chunks().is_empty() && self.inline_word() & SITE_SET_EXTENDED == 0;
        if tail_empty {
            lo.encode(buf);
            return;
        }
        (lo | SITE_SET_EXTENDED).encode(buf);
        // Chunk the tail: every member ≥ 63, rebased by 63.
        let mut chunks: Vec<u64> = Vec::new();
        for s in self.iter() {
            let i = s.index();
            if i < 63 {
                continue;
            }
            let (k, b) = ((i - 63) / 64, (i - 63) % 64);
            if chunks.len() <= k {
                chunks.resize(k + 1, 0);
            }
            chunks[k] |= 1u64 << b;
        }
        debug_assert!(!chunks.is_empty() && chunks.len() <= SITE_SET_MAX_CHUNKS);
        (chunks.len() as u16).encode(buf);
        for c in &chunks {
            c.encode(buf);
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        let lo = u64::decode(buf)?;
        let mut set = SiteSet::from_raw_parts(lo & !SITE_SET_EXTENDED, Vec::new());
        if lo & SITE_SET_EXTENDED == 0 {
            return Ok(set);
        }
        let nchunks = u16::decode(buf)? as usize;
        if nchunks == 0 || nchunks > SITE_SET_MAX_CHUNKS {
            return Err(MirageError::Codec("bad SiteSet chunk count"));
        }
        need(buf, nchunks * 8)?;
        for k in 0..nchunks {
            let chunk = u64::decode(buf)?;
            let mut bits = chunk;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let site = 63 + 64 * k + b;
                if site > u16::MAX as usize {
                    return Err(MirageError::Codec("SiteSet member beyond u16 site ids"));
                }
                set.insert(SiteId(site as u16));
            }
        }
        Ok(set)
    }
}

impl Wire for PageDiff {
    /// `u16` span count, then per span a `u16` offset, `u16` length,
    /// and the raw XOR bytes. Matches [`PageDiff::wire_size`] exactly.
    /// Decoding revalidates canonical form via [`PageDiff::from_spans`],
    /// so a corrupted or adversarial diff is rejected, never applied.
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.spans().len() as u16).encode(buf);
        for s in self.spans() {
            s.offset.encode(buf);
            (s.xor.len() as u16).encode(buf);
            buf.extend_from_slice(&s.xor);
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        let nspans = u16::decode(buf)? as usize;
        if nspans > MAX_DIFF_SPANS {
            return Err(MirageError::Codec("too many diff spans"));
        }
        let mut spans = Vec::with_capacity(nspans);
        for _ in 0..nspans {
            let offset = u16::decode(buf)?;
            let len = u16::decode(buf)? as usize;
            need(buf, len)?;
            let (head, rest) = buf.split_at(len);
            let xor = head.to_vec();
            *buf = rest;
            spans.push(DiffSpan { offset, xor });
        }
        PageDiff::from_spans(spans)
    }
}

impl Wire for SimDuration {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        Ok(SimDuration(u64::decode(buf)?))
    }
}

impl Wire for Delta {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        Ok(Delta(u32::decode(buf)?))
    }
}

impl Wire for Vec<u8> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode(buf);
        buf.extend_from_slice(self);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        let len = u32::decode(buf)? as usize;
        need(buf, len)?;
        let (head, rest) = buf.split_at(len);
        let v = head.to_vec();
        *buf = rest;
        Ok(v)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        match u8::decode(buf)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            _ => Err(MirageError::Codec("bad Option discriminant")),
        }
    }
}

/// Encodes a value into a fresh buffer.
pub fn to_bytes<T: Wire>(value: &T) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    value.encode(&mut buf);
    buf
}

/// Decodes a value, requiring the buffer to be fully consumed.
///
/// # Errors
///
/// Returns [`MirageError::Codec`] on truncation, bad discriminants, or
/// trailing garbage.
pub fn from_bytes<T: Wire>(mut buf: &[u8]) -> Result<T> {
    let v = T::decode(&mut buf)?;
    if !buf.is_empty() {
        return Err(MirageError::Codec("trailing bytes"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Wire + PartialEq + core::fmt::Debug>(v: T) {
        let bytes = to_bytes(&v);
        let back: T = from_bytes(&bytes).expect("decode");
        assert_eq!(back, v);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(0xABCDu16);
        round_trip(0xDEADBEEFu32);
        round_trip(u64::MAX);
    }

    #[test]
    fn ids_round_trip() {
        round_trip(SiteId(7));
        round_trip(PageNum(255));
        round_trip(SegmentId::new(SiteId(1), 42));
        round_trip(Pid::new(SiteId(2), 9));
    }

    #[test]
    fn enums_round_trip() {
        round_trip(Access::Read);
        round_trip(Access::Write);
        round_trip(PageProt::None);
        round_trip(PageProt::Read);
        round_trip(PageProt::ReadWrite);
    }

    #[test]
    fn collections_round_trip() {
        let set: SiteSet = [SiteId(0), SiteId(5), SiteId(63)].into_iter().collect();
        round_trip(set);
        round_trip(vec![1u8, 2, 3]);
        round_trip(Vec::<u8>::new());
        round_trip(Some(PageNum(3)));
        round_trip(Option::<PageNum>::None);
    }

    #[test]
    fn truncated_input_is_an_error() {
        let bytes = to_bytes(&SegmentId::new(SiteId(1), 42));
        for cut in 0..bytes.len() {
            assert!(
                from_bytes::<SegmentId>(&bytes[..cut]).is_err(),
                "decode of {cut}-byte prefix should fail"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_an_error() {
        let mut bytes = to_bytes(&SiteId(1));
        bytes.push(0);
        assert_eq!(from_bytes::<SiteId>(&bytes), Err(MirageError::Codec("trailing bytes")));
    }

    #[test]
    fn bad_discriminants_are_errors() {
        assert!(from_bytes::<Access>(&[9]).is_err());
        assert!(from_bytes::<PageProt>(&[9]).is_err());
        assert!(from_bytes::<Option<u8>>(&[2]).is_err());
    }

    #[test]
    fn page_diff_round_trips() {
        let base = vec![0u8; mirage_types::PAGE_SIZE];
        let mut target = base.clone();
        target[3] = 9;
        target[500..505].copy_from_slice(&[1, 2, 3, 4, 5]);
        let d = PageDiff::compute(&base, &target);
        assert_eq!(to_bytes(&d).len(), d.wire_size());
        round_trip(d);
        round_trip(PageDiff::compute(&base, &base));
    }

    #[test]
    fn page_diff_span_count_guards_allocation() {
        // A huge claimed span count with no body must fail, not allocate.
        let mut buf = Vec::new();
        u16::MAX.encode(&mut buf);
        assert!(from_bytes::<PageDiff>(&buf).is_err());
    }

    #[test]
    fn vec_length_prefix_guards_allocation() {
        // A huge claimed length with a short body must fail, not allocate.
        let mut buf = Vec::new();
        (u32::MAX).encode(&mut buf);
        buf.push(1);
        assert!(from_bytes::<Vec<u8>>(&buf).is_err());
    }
}
