//! The calibrated component-cost model.
//!
//! Every timing constant here is taken directly from the paper's measured
//! values (§6.2, §7.1, §7.2). The simulator charges these costs; nothing
//! else in the workspace hard-codes a millisecond. Substituting a modern
//! cost profile (the paper's §10 "more modern machine architecture" remark)
//! is a one-struct change, and `NetCosts::modern()` provides one.

use mirage_types::SimDuration;

/// Size class of a network message.
///
/// §7.2: "Three of these message are large responses (1024 bytes of
/// data); the other 6 are short messages." Short messages are headers
/// only; large messages carry a page in a 1024-byte buffer.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SizeClass {
    /// Header-only control message.
    Short,
    /// Page-carrying message (1024-byte buffer).
    Large,
    /// Variable-payload message carrying the given number of payload
    /// bytes (delta grants). Charged by linear interpolation between
    /// the short (0-byte) and large (1024-byte) calibration points, so
    /// `Bytes(0)` costs exactly a short message and `Bytes(1024)`
    /// exactly a large one.
    Bytes(u32),
}

/// The component-cost model, in simulated time.
///
/// Defaults reproduce the VAX 11/750 + 10 Mbit Ethernet + Locus numbers;
/// see the field docs for the paper sentence each value comes from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetCosts {
    /// Elapsed transmission of a short message, one direction, one side's
    /// share. Table 3: "Read Request output transmission elapsed 3.2" and
    /// "Read request input reception elapsed 3.2". Two sides ⇒ 6.4 ms
    /// one-way; a round trip of two short messages ≈ 12.9 ms (§7.1).
    pub short_half: SimDuration,
    /// Elapsed transmission of a page-carrying message, one side's share.
    /// Table 3: "Page input reception elapsed 7.5" / "Page output
    /// transmission elapsed 7.5". One-way ≈ 15 ms, matching the §7.1
    /// extrapolation from the 21.5 ms large round trip.
    pub large_half: SimDuration,
    /// CPU time at the using site to build and issue a page request.
    /// Table 3: "Using Site Read Request* 2.5".
    pub request_cpu: SimDuration,
    /// CPU time of the kernel server process to pick up a request.
    /// Table 3: "Server process time for request* 1.5".
    pub server_cpu: SimDuration,
    /// CPU time at the serving site to process the request (allocate a
    /// PTE, map the frame, copy to the message, unmap — see the §7.1
    /// footnote). Table 3: "Processing Time* 2".
    pub serve_processing: SimDuration,
    /// Interrupt cost to install, invalidate, or upgrade a page on message
    /// input. §7.2: "We add 9ms for the 6 input interrupts" ⇒ 1.5 ms each.
    pub input_interrupt: SimDuration,
    /// Cost to service a fault whose library is colocated with the
    /// requester. §7.2: "We add 3ms to service these two faults" ⇒ 1.5 ms.
    pub local_fault: SimDuration,
    /// Lazy PTE remap cost per 512-byte page, charged when a process that
    /// uses shared memory is scheduled. §6.2: "The measured cost of
    /// mapping one 512 byte page ranges from 106-125 microseconds."
    pub remap_per_page: SimDuration,
}

impl NetCosts {
    /// The paper's measured VAX 11/750 / 10 Mbit Ethernet / Locus costs.
    pub fn vax_locus() -> Self {
        Self {
            short_half: SimDuration::from_millis_f64(3.2),
            large_half: SimDuration::from_millis_f64(7.5),
            request_cpu: SimDuration::from_millis_f64(2.5),
            server_cpu: SimDuration::from_millis_f64(1.5),
            serve_processing: SimDuration::from_millis_f64(2.0),
            input_interrupt: SimDuration::from_millis_f64(1.5),
            local_fault: SimDuration::from_millis_f64(1.5),
            remap_per_page: SimDuration::from_micros(110),
        }
    }

    /// A cost profile roughly 100× faster, standing in for the "more
    /// modern machine architecture, faster CPU, better Ethernet
    /// interfaces" the paper's §10 predicts would "improve performance
    /// substantially".
    pub fn modern() -> Self {
        let v = Self::vax_locus();
        let scale = |d: SimDuration| SimDuration(d.0 / 100);
        Self {
            short_half: scale(v.short_half),
            large_half: scale(v.large_half),
            request_cpu: scale(v.request_cpu),
            server_cpu: scale(v.server_cpu),
            serve_processing: scale(v.serve_processing),
            input_interrupt: scale(v.input_interrupt),
            local_fault: scale(v.local_fault),
            remap_per_page: scale(v.remap_per_page),
        }
    }

    /// One-way elapsed time for a message of the given size class
    /// (sender's output transmission plus receiver's input reception).
    pub fn one_way(&self, size: SizeClass) -> SimDuration {
        let half = match size {
            SizeClass::Short => self.short_half,
            SizeClass::Large => self.large_half,
            SizeClass::Bytes(b) => {
                // Interpolate between the two calibrated points: the
                // short (header-only) cost is the per-message floor,
                // and each payload byte buys a 1/1024 share of the
                // short→large spread.
                let spread = self.large_half.0.saturating_sub(self.short_half.0);
                SimDuration(self.short_half.0 + spread * u64::from(b) / 1024)
            }
        };
        half.scale(2)
    }

    /// Round trip of a short request and a short response.
    ///
    /// §7.1: "The measured performance of a short network message (no
    /// buffer) sent round trip between two sites is 12.9 ms." Our model
    /// gives 4 × 3.2 = 12.8 ms of wire time; the remaining 0.1 ms is
    /// request CPU jitter the paper folds into its measurement.
    pub fn short_round_trip(&self) -> SimDuration {
        self.one_way(SizeClass::Short).scale(2)
    }

    /// Round trip sending a 1024-byte buffer and receiving a short reply.
    ///
    /// §7.1: measured at 21.5 ms average elapsed.
    pub fn large_round_trip(&self) -> SimDuration {
        self.one_way(SizeClass::Large) + self.one_way(SizeClass::Short)
    }

    /// The threshold below which an invalidation denial is not worth the
    /// retry round trip.
    ///
    /// §7.1 caveat 1: "Because of the overhead in sending and receiving
    /// this (short) invalidation message, if there is less than 12.9
    /// msecs remaining in Δ, the invalidation should be honored (or
    /// delayed and then honored) rather than requiring the requester
    /// repeat the invalidation later."
    pub fn retry_threshold(&self) -> SimDuration {
        self.short_round_trip()
    }
}

impl Default for NetCosts {
    fn default() -> Self {
        Self::vax_locus()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_round_trip_matches_paper() {
        let c = NetCosts::vax_locus();
        let ms = c.short_round_trip().as_millis_f64();
        assert!((ms - 12.9).abs() < 0.2, "short RT should be ≈12.9 ms, got {ms}");
    }

    #[test]
    fn large_round_trip_matches_paper() {
        let c = NetCosts::vax_locus();
        let ms = c.large_round_trip().as_millis_f64();
        assert!((ms - 21.5).abs() < 0.5, "large RT should be ≈21.5 ms, got {ms}");
    }

    #[test]
    fn large_one_way_matches_extrapolation() {
        // §7.1: "transmitting and receiving a 1024 byte message one-way in
        // the prototype can be extrapolated from 21.5 msecs to take
        // roughly 15 msecs."
        let c = NetCosts::vax_locus();
        let ms = c.one_way(SizeClass::Large).as_millis_f64();
        assert!((ms - 15.0).abs() < 0.1, "large one-way should be ≈15 ms, got {ms}");
    }

    #[test]
    fn byte_sized_costs_interpolate_between_calibration_points() {
        let c = NetCosts::vax_locus();
        assert_eq!(c.one_way(SizeClass::Bytes(0)), c.one_way(SizeClass::Short));
        assert_eq!(c.one_way(SizeClass::Bytes(1024)), c.one_way(SizeClass::Large));
        let mid = c.one_way(SizeClass::Bytes(512));
        assert!(mid > c.one_way(SizeClass::Short));
        assert!(mid < c.one_way(SizeClass::Large));
        // Monotone in payload size.
        let mut prev = c.one_way(SizeClass::Bytes(0));
        for b in [1, 64, 100, 512, 1000, 1024] {
            let d = c.one_way(SizeClass::Bytes(b));
            assert!(d >= prev, "one_way must be monotone in payload bytes");
            prev = d;
        }
    }

    #[test]
    fn remap_cost_within_measured_range() {
        let us = NetCosts::vax_locus().remap_per_page.0 / 1_000;
        assert!((106..=125).contains(&us), "remap cost {us}µs outside 106-125µs");
    }

    #[test]
    fn modern_profile_is_uniformly_faster() {
        let v = NetCosts::vax_locus();
        let m = NetCosts::modern();
        assert!(m.short_half < v.short_half);
        assert!(m.large_half < v.large_half);
        assert!(m.remap_per_page < v.remap_per_page);
    }
}
