//! Network topology: the set of sites and pairwise reachability.
//!
//! The paper's network is three VAXs on one Ethernet — a full mesh of
//! point-to-point Locus circuits. `Topology` generalizes to N sites and
//! supports marking circuits down for failure-injection tests.

use mirage_types::{
    MirageError,
    Result,
    SiteId,
    SiteSet,
};

/// The set of sites in the network and which circuits are up.
#[derive(Clone, Debug)]
pub struct Topology {
    sites: SiteSet,
    /// Circuits marked down, as (low, high) site pairs.
    down: Vec<(SiteId, SiteId)>,
}

impl Topology {
    /// A full mesh of `n` sites numbered `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds [`SiteSet::CAPACITY`] (the `u16` site-id
    /// space).
    pub fn full_mesh(n: usize) -> Self {
        assert!(n <= SiteSet::CAPACITY, "too many sites");
        let sites = (0..n).map(|i| SiteId(i as u16)).collect();
        Self { sites, down: Vec::new() }
    }

    /// The paper's three-VAX network.
    pub fn paper() -> Self {
        Self::full_mesh(3)
    }

    /// All sites in the network.
    pub fn sites(&self) -> &SiteSet {
        &self.sites
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// True if the topology has no sites.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// True if `site` is part of the network.
    pub fn contains(&self, site: SiteId) -> bool {
        self.sites.contains(site)
    }

    fn key(a: SiteId, b: SiteId) -> (SiteId, SiteId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Marks the circuit between two sites down (for failure injection).
    pub fn take_down(&mut self, a: SiteId, b: SiteId) {
        let k = Self::key(a, b);
        if !self.down.contains(&k) {
            self.down.push(k);
        }
    }

    /// Restores the circuit between two sites.
    pub fn restore(&mut self, a: SiteId, b: SiteId) {
        let k = Self::key(a, b);
        self.down.retain(|&d| d != k);
    }

    /// Checks that a message can be carried from `from` to `to`.
    ///
    /// # Errors
    ///
    /// [`MirageError::UnknownSite`] if either endpoint is not in the
    /// network; [`MirageError::CircuitDown`] if the circuit is down.
    pub fn route(&self, from: SiteId, to: SiteId) -> Result<()> {
        if !self.contains(from) {
            return Err(MirageError::UnknownSite(from));
        }
        if !self.contains(to) {
            return Err(MirageError::UnknownSite(to));
        }
        if from != to && self.down.contains(&Self::key(from, to)) {
            return Err(MirageError::CircuitDown { from, to });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_topology_has_three_sites() {
        let t = Topology::paper();
        assert_eq!(t.len(), 3);
        assert!(t.contains(SiteId(0)));
        assert!(t.contains(SiteId(2)));
        assert!(!t.contains(SiteId(3)));
    }

    #[test]
    fn routing_checks_membership() {
        let t = Topology::full_mesh(2);
        assert!(t.route(SiteId(0), SiteId(1)).is_ok());
        assert_eq!(t.route(SiteId(0), SiteId(9)), Err(MirageError::UnknownSite(SiteId(9))));
    }

    #[test]
    fn circuits_can_fail_and_recover_symmetrically() {
        let mut t = Topology::full_mesh(3);
        t.take_down(SiteId(2), SiteId(0));
        assert!(t.route(SiteId(0), SiteId(2)).is_err());
        assert!(t.route(SiteId(2), SiteId(0)).is_err());
        assert!(t.route(SiteId(0), SiteId(1)).is_ok());
        t.restore(SiteId(0), SiteId(2));
        assert!(t.route(SiteId(0), SiteId(2)).is_ok());
    }

    #[test]
    fn self_route_never_down() {
        let mut t = Topology::full_mesh(2);
        t.take_down(SiteId(0), SiteId(0));
        assert!(t.route(SiteId(0), SiteId(0)).is_ok());
    }
}
