//! Dense message-kind enumeration shared by instrumentation layers.
//!
//! The protocol payload lives in `mirage-core`, but per-kind counters are
//! kept by the simulator's instrumentation and by the bench experiment
//! reports. Indexing those counters by this enum (instead of string tags
//! in a `HashMap`) makes the counters a fixed array: no hashing on the
//! per-message path and a stable, deterministic iteration order.

/// Every Mirage protocol message kind, in wire-discriminant order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum MsgKind {
    /// Requester → library: queue a page request.
    PageRequest = 0,
    /// Library → clock: grant read copies to additional readers.
    AddReaders = 1,
    /// Library → clock: invalidate the current copy for a demand.
    Invalidate = 2,
    /// Clock → library: Δ not expired; retry after the given wait.
    InvalidateDeny = 3,
    /// Clock → library: the demand has been carried out.
    InvalidateDone = 4,
    /// Clock → reader: discard your read copy.
    ReaderInvalidate = 5,
    /// Reader → clock: copy discarded.
    ReaderInvalidateAck = 6,
    /// Storing site → requester: the page itself (the only large message).
    PageGrant = 7,
    /// Clock/library → requester: upgrade in place, no data.
    UpgradeGrant = 8,
    /// Library → clock: completion report received (retry mode only).
    DoneAck = 9,
    /// Write-grant receiver → granting site: page installed (retry mode
    /// only).
    GrantAck = 10,
    /// Upgrade receiver → granting site: no frame to promote; send the
    /// page itself (retry mode only).
    UpgradeNack = 11,
    /// Old library site → new library site: the frozen library state for
    /// a segment (role handoff; large — carries the queue and copy map).
    LibraryHandoff = 12,
    /// New library site → old library site: handoff adopted; stop
    /// retransmitting.
    LibraryHandoffAck = 13,
    /// Forwarding stub → requester: the library moved; re-resolve to the
    /// named site (carries the handoff epoch).
    LibraryRedirect = 14,
    /// Storing site → requester: the page as an XOR diff against the
    /// recipient's last-served copy (delta-grant mode only; size
    /// proportional to the bytes that changed).
    PageGrantDelta = 15,
    /// Requester → home: read lease request (Tardis timestamp
    /// coherence).
    TsRead = 16,
    /// Requester → home: exclusive write request (Tardis).
    TsWrite = 17,
    /// Home → requester: the page with its lease window (Tardis; large).
    TsReadData = 18,
    /// Home → requester: lease extension for the version the requester
    /// already caches — no data on the wire (Tardis; the message that
    /// replaces invalidation fan-out).
    TsRenew = 19,
    /// Home → requester: exclusive grant at the bumped write timestamp
    /// (Tardis; large when it carries the page, short as an in-place
    /// upgrade).
    TsWriteGrant = 20,
    /// Home → current exclusive owner: surrender the dirty copy (Tardis).
    TsRecall = 21,
    /// Owner → home: the dirty page (or a clean no-data confirmation)
    /// answering a recall (Tardis; large when dirty).
    TsWriteBack = 22,
    /// Home → owner: write-back received; stop retransmitting (Tardis).
    TsWriteBackAck = 23,
}

impl MsgKind {
    /// Number of message kinds (the length of per-kind counter arrays).
    pub const COUNT: usize = 24;

    /// All kinds, in wire-discriminant order.
    pub const ALL: [MsgKind; Self::COUNT] = [
        MsgKind::PageRequest,
        MsgKind::AddReaders,
        MsgKind::Invalidate,
        MsgKind::InvalidateDeny,
        MsgKind::InvalidateDone,
        MsgKind::ReaderInvalidate,
        MsgKind::ReaderInvalidateAck,
        MsgKind::PageGrant,
        MsgKind::UpgradeGrant,
        MsgKind::DoneAck,
        MsgKind::GrantAck,
        MsgKind::UpgradeNack,
        MsgKind::LibraryHandoff,
        MsgKind::LibraryHandoffAck,
        MsgKind::LibraryRedirect,
        MsgKind::PageGrantDelta,
        MsgKind::TsRead,
        MsgKind::TsWrite,
        MsgKind::TsReadData,
        MsgKind::TsRenew,
        MsgKind::TsWriteGrant,
        MsgKind::TsRecall,
        MsgKind::TsWriteBack,
        MsgKind::TsWriteBackAck,
    ];

    /// Dense index into a `[_; MsgKind::COUNT]` counter array.
    pub fn index(self) -> usize {
        self as usize
    }

    /// The human-readable tag (matches the message variant name).
    pub fn name(self) -> &'static str {
        match self {
            MsgKind::PageRequest => "PageRequest",
            MsgKind::AddReaders => "AddReaders",
            MsgKind::Invalidate => "Invalidate",
            MsgKind::InvalidateDeny => "InvalidateDeny",
            MsgKind::InvalidateDone => "InvalidateDone",
            MsgKind::ReaderInvalidate => "ReaderInvalidate",
            MsgKind::ReaderInvalidateAck => "ReaderInvalidateAck",
            MsgKind::PageGrant => "PageGrant",
            MsgKind::UpgradeGrant => "UpgradeGrant",
            MsgKind::DoneAck => "DoneAck",
            MsgKind::GrantAck => "GrantAck",
            MsgKind::UpgradeNack => "UpgradeNack",
            MsgKind::LibraryHandoff => "LibraryHandoff",
            MsgKind::LibraryHandoffAck => "LibraryHandoffAck",
            MsgKind::LibraryRedirect => "LibraryRedirect",
            MsgKind::PageGrantDelta => "PageGrantDelta",
            MsgKind::TsRead => "TsRead",
            MsgKind::TsWrite => "TsWrite",
            MsgKind::TsReadData => "TsReadData",
            MsgKind::TsRenew => "TsRenew",
            MsgKind::TsWriteGrant => "TsWriteGrant",
            MsgKind::TsRecall => "TsRecall",
            MsgKind::TsWriteBack => "TsWriteBack",
            MsgKind::TsWriteBackAck => "TsWriteBackAck",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_is_dense_and_in_order() {
        assert_eq!(MsgKind::ALL.len(), MsgKind::COUNT);
        for (i, k) in MsgKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }

    #[test]
    fn names_are_unique() {
        for a in MsgKind::ALL {
            for b in MsgKind::ALL {
                assert_eq!(a.name() == b.name(), a == b);
            }
        }
    }
}
