//! Length-prefixed framing and the connect handshake for real byte
//! streams.
//!
//! A [`crate::transport::SequencedTransport`] backed by a stream socket
//! (Unix-domain or TCP) carries protocol messages as *frames*:
//!
//! ```text
//! [ len: u32 ][ seq: u64 ][ sum: u64 ][ payload: len-16 bytes ]
//! ```
//!
//! `len` counts everything after itself (`16 + payload.len()`), `seq`
//! is the circuit sequence number the sender's
//! [`crate::CircuitTable`] stamped, and `sum` is the FNV-1a hash of the
//! `seq` bytes followed by the payload — a whole-frame integrity check,
//! so a flipped bit anywhere in the frame surfaces as a codec error
//! (and a dropped connection) instead of a corrupt protocol message.
//!
//! Every connection opens with a fixed 14-byte [`Hello`]:
//!
//! ```text
//! [ magic: "MRG1" ][ from: u16 ][ incarnation: u64 ]
//! ```
//!
//! The incarnation stamps every frame read off that connection. A
//! restarted process connects with a bumped incarnation; receivers
//! reset the peer's circuit on the bump and discard frames still
//! arriving from the old incarnation (the Locus topology-change rule,
//! §7.1, applied to real sockets).

use mirage_types::{
    fnv64,
    MirageError,
    Result,
    SiteId,
};

/// Connection-opening magic ("MiRaGe, framing v1").
pub const HELLO_MAGIC: [u8; 4] = *b"MRG1";

/// Encoded size of a [`Hello`].
pub const HELLO_LEN: usize = 14;

/// Frame header bytes after the length prefix (`seq` + `sum`).
pub const FRAME_HEADER: usize = 16;

/// Upper bound on a frame's payload. The largest protocol message is a
/// library handoff of a sharded segment — well under this; anything
/// bigger is a corrupt length field and kills the connection.
pub const MAX_FRAME_PAYLOAD: usize = 1 << 20;

/// The connect handshake: who is dialing, and which incarnation of it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hello {
    /// The connecting site.
    pub from: SiteId,
    /// The connecting process's incarnation (bumped on every restart).
    pub incarnation: u64,
}

/// Encodes a handshake.
pub fn encode_hello(h: &Hello) -> [u8; HELLO_LEN] {
    let mut out = [0u8; HELLO_LEN];
    out[..4].copy_from_slice(&HELLO_MAGIC);
    out[4..6].copy_from_slice(&h.from.0.to_le_bytes());
    out[6..14].copy_from_slice(&h.incarnation.to_le_bytes());
    out
}

/// Decodes a handshake.
///
/// # Errors
///
/// Returns [`MirageError::Codec`] if the buffer is not exactly
/// [`HELLO_LEN`] bytes or the magic does not match.
pub fn decode_hello(buf: &[u8]) -> Result<Hello> {
    if buf.len() != HELLO_LEN {
        return Err(MirageError::Codec("hello length mismatch"));
    }
    if buf[..4] != HELLO_MAGIC {
        return Err(MirageError::Codec("bad hello magic"));
    }
    let from = SiteId(u16::from_le_bytes([buf[4], buf[5]]));
    let incarnation = u64::from_le_bytes(buf[6..14].try_into().expect("length checked"));
    Ok(Hello { from, incarnation })
}

/// The whole-frame integrity hash: FNV-1a over the sequence number's
/// little-endian bytes followed by the payload.
pub fn frame_sum(seq: u64, payload: &[u8]) -> u64 {
    let mut bytes = Vec::with_capacity(8 + payload.len());
    bytes.extend_from_slice(&seq.to_le_bytes());
    bytes.extend_from_slice(payload);
    fnv64(&bytes)
}

/// Appends one encoded frame to `out`.
pub fn encode_frame(seq: u64, payload: &[u8], out: &mut Vec<u8>) {
    debug_assert!(payload.len() <= MAX_FRAME_PAYLOAD);
    let len = (FRAME_HEADER + payload.len()) as u32;
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&frame_sum(seq, payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// A decoded frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// The sender's circuit sequence number.
    pub seq: u64,
    /// The protocol message bytes.
    pub payload: Vec<u8>,
}

/// Incremental frame decoder for a byte stream.
///
/// Feed it whatever `read(2)` returned; pop complete frames. Partial
/// frames wait for more bytes (a strict prefix of a valid frame never
/// yields anything), and any integrity violation — oversized or
/// undersized length, checksum mismatch — is a hard error: the caller
/// must drop the connection and let reconnection (plus the protocol
/// retry chains) recover.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw stream bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Discards any partial frame — the mid-frame reconnect path: a new
    /// connection restarts framing from its first byte.
    pub fn reset(&mut self) {
        self.buf.clear();
    }

    /// Bytes currently buffered (diagnostics).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pops the next complete frame, if one is fully buffered.
    ///
    /// # Errors
    ///
    /// Returns [`MirageError::Codec`] if the stream is provably corrupt
    /// (impossible length or checksum mismatch). The decoder is left
    /// unusable for this connection; [`FrameDecoder::reset`] it after
    /// reconnecting.
    pub fn next_frame(&mut self) -> Result<Option<Frame>> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len =
            u32::from_le_bytes(self.buf[..4].try_into().expect("length checked")) as usize;
        if !(FRAME_HEADER..=FRAME_HEADER + MAX_FRAME_PAYLOAD).contains(&len) {
            return Err(MirageError::Codec("impossible frame length"));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let seq = u64::from_le_bytes(self.buf[4..12].try_into().expect("length checked"));
        let sum = u64::from_le_bytes(self.buf[12..20].try_into().expect("length checked"));
        let payload = self.buf[20..4 + len].to_vec();
        if frame_sum(seq, &payload) != sum {
            return Err(MirageError::Codec("frame checksum mismatch"));
        }
        self.buf.drain(..4 + len);
        Ok(Some(Frame { seq, payload }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let mut wire = Vec::new();
        encode_frame(7, b"hello", &mut wire);
        encode_frame(8, b"", &mut wire);
        let mut d = FrameDecoder::new();
        d.push(&wire);
        let a = d.next_frame().unwrap().unwrap();
        assert_eq!((a.seq, a.payload.as_slice()), (7, b"hello".as_slice()));
        let b = d.next_frame().unwrap().unwrap();
        assert_eq!((b.seq, b.payload.len()), (8, 0));
        assert!(d.next_frame().unwrap().is_none());
    }

    #[test]
    fn partial_frames_wait_for_more_bytes() {
        let mut wire = Vec::new();
        encode_frame(1, &[9u8; 100], &mut wire);
        let mut d = FrameDecoder::new();
        for chunk in wire.chunks(7) {
            assert!(d.next_frame().unwrap().is_none() || d.buffered() == 0);
            d.push(chunk);
        }
        assert_eq!(d.next_frame().unwrap().unwrap().payload, vec![9u8; 100]);
    }

    #[test]
    fn checksum_rejects_payload_corruption() {
        let mut wire = Vec::new();
        encode_frame(3, b"payload", &mut wire);
        let last = wire.len() - 1;
        wire[last] ^= 0x40;
        let mut d = FrameDecoder::new();
        d.push(&wire);
        assert!(d.next_frame().is_err());
    }

    #[test]
    fn hello_round_trip_and_magic_check() {
        let h = Hello { from: SiteId(513), incarnation: 42 };
        let enc = encode_hello(&h);
        assert_eq!(decode_hello(&enc).unwrap(), h);
        let mut bad = enc;
        bad[0] = b'X';
        assert!(decode_hello(&bad).is_err());
        assert!(decode_hello(&enc[..HELLO_LEN - 1]).is_err());
    }
}
