//! Locus-style network message layer for Mirage.
//!
//! The paper (§7.1): "The Locus programmer uses network messages to
//! communicate between sites, while the Locus system at the lowest of
//! levels, maintains a form of virtual circuit between sites to sequence
//! network messages and maintain topology."
//!
//! This crate provides that layer, independent of any particular payload:
//!
//! * [`message::Message`] — a typed envelope (source, destination,
//!   sequence number, payload) generic over the payload type;
//! * [`wire::Wire`] — a compact binary codec trait plus implementations
//!   for the primitive Mirage types, so payloads can be put on a real
//!   wire (and so the codec can be benchmarked);
//! * [`kind::MsgKind`] — the dense message-kind enumeration that indexes
//!   per-kind instrumentation counters;
//! * [`circuit::CircuitTable`] — per-peer sequencing with in-order
//!   delivery verification, the guarantee the DSM protocol assumes;
//! * [`faults::FaultPlan`] — a deterministic, replayable description of
//!   how a network may misbehave (drop/duplicate/delay/reorder, site
//!   crash/restart), interpreted by the simulator;
//! * [`topology::Topology`] — the set of sites in the network;
//! * [`costs::NetCosts`] — the component-cost model calibrated to the
//!   paper's measured timings (12.9 ms short round trip, Table 3, …);
//! * [`frame::FrameDecoder`] — length-prefixed, checksummed framing plus
//!   the incarnation-stamped connect handshake for real byte streams;
//! * [`transport::SequencedTransport`] — the ordered/framed/reconnectable
//!   circuit abstraction with in-process channel, Unix-domain socket,
//!   and TCP implementations.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod circuit;
pub mod costs;
pub mod faults;
pub mod frame;
pub mod kind;
pub mod message;
pub mod topology;
pub mod transport;
pub mod wire;

pub use circuit::{
    CircuitTable,
    Verdict,
};
pub use costs::{
    NetCosts,
    SizeClass,
};
pub use faults::{
    CrashEvent,
    FaultPlan,
    LinkFaults,
};
pub use frame::{
    Frame,
    FrameDecoder,
    Hello,
};
pub use kind::MsgKind;
pub use message::Message;
pub use topology::Topology;
pub use transport::{
    BoundListener,
    ChannelNet,
    ChannelTransport,
    Endpoint,
    PeerFrame,
    SequencedIn,
    SequencedTransport,
    StreamTransport,
    TransportEvent,
    TransportStats,
};
pub use wire::Wire;
