//! Per-peer virtual circuits with sequence verification.
//!
//! Locus "maintains a form of virtual circuit between sites to sequence
//! network messages and maintain topology" (§7.1). The DSM protocol relies
//! on this: invalidations and grants between a pair of sites must not be
//! reordered. `CircuitTable` stamps outgoing messages and verifies
//! incoming ones; transports that can reorder (none of ours do, but tests
//! inject it) are caught here rather than corrupting protocol state.

use std::collections::HashMap;

use mirage_types::{
    MirageError,
    Result,
    SiteId,
};

use crate::message::Message;

/// Sequencing state for one site's circuits to all of its peers.
#[derive(Debug, Default)]
pub struct CircuitTable {
    /// Next sequence number to assign, per destination.
    next_out: HashMap<SiteId, u64>,
    /// Next sequence number expected, per source.
    next_in: HashMap<SiteId, u64>,
}

impl CircuitTable {
    /// Creates an empty table; circuits materialize on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stamps an outgoing message with the next sequence number on the
    /// circuit to its destination.
    pub fn stamp<T>(&mut self, msg: &mut Message<T>) {
        let seq = self.next_out.entry(msg.dst).or_insert(0);
        msg.seq = *seq;
        *seq += 1;
    }

    /// Verifies an incoming message arrived in circuit order.
    ///
    /// # Errors
    ///
    /// Returns [`MirageError::Protocol`] if the sequence number is not the
    /// next expected one for the source's circuit — evidence of loss or
    /// reordering that the transport contract forbids.
    pub fn verify<T>(&mut self, msg: &Message<T>) -> Result<()> {
        let expected = self.next_in.entry(msg.src).or_insert(0);
        if msg.seq != *expected {
            return Err(MirageError::Protocol("virtual circuit sequence violation"));
        }
        *expected += 1;
        Ok(())
    }

    /// Number of outgoing messages stamped toward `dst` so far.
    pub fn sent_to(&self, dst: SiteId) -> u64 {
        self.next_out.get(&dst).copied().unwrap_or(0)
    }

    /// Number of incoming messages verified from `src` so far.
    pub fn received_from(&self, src: SiteId) -> u64 {
        self.next_in.get(&src).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(src: u16, dst: u16) -> Message<()> {
        Message::new(SiteId(src), SiteId(dst), ())
    }

    #[test]
    fn stamps_are_sequential_per_destination() {
        let mut t = CircuitTable::new();
        let mut a = msg(0, 1);
        let mut b = msg(0, 1);
        let mut c = msg(0, 2);
        t.stamp(&mut a);
        t.stamp(&mut b);
        t.stamp(&mut c);
        assert_eq!((a.seq, b.seq, c.seq), (0, 1, 0));
        assert_eq!(t.sent_to(SiteId(1)), 2);
        assert_eq!(t.sent_to(SiteId(2)), 1);
    }

    #[test]
    fn verify_accepts_in_order_rejects_reorder() {
        let mut sender = CircuitTable::new();
        let mut receiver = CircuitTable::new();
        let mut m0 = msg(0, 1);
        let mut m1 = msg(0, 1);
        sender.stamp(&mut m0);
        sender.stamp(&mut m1);
        // Reordered delivery is detected.
        assert!(receiver.verify(&m1).is_err());
        // In-order delivery succeeds.
        assert!(receiver.verify(&m0).is_ok());
        assert!(receiver.verify(&m1).is_ok());
        assert_eq!(receiver.received_from(SiteId(0)), 2);
    }

    #[test]
    fn duplicate_delivery_is_rejected() {
        let mut sender = CircuitTable::new();
        let mut receiver = CircuitTable::new();
        let mut m = msg(0, 1);
        sender.stamp(&mut m);
        assert!(receiver.verify(&m).is_ok());
        assert!(receiver.verify(&m).is_err());
    }

    #[test]
    fn circuits_are_independent_per_source() {
        let mut receiver = CircuitTable::new();
        let mut s0 = CircuitTable::new();
        let mut s2 = CircuitTable::new();
        let mut a = msg(0, 1);
        let mut b = msg(2, 1);
        s0.stamp(&mut a);
        s2.stamp(&mut b);
        assert!(receiver.verify(&a).is_ok());
        assert!(receiver.verify(&b).is_ok());
    }
}
