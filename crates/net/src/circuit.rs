//! Per-peer virtual circuits with sequence verification.
//!
//! Locus "maintains a form of virtual circuit between sites to sequence
//! network messages and maintain topology" (§7.1). The DSM protocol relies
//! on this: invalidations and grants between a pair of sites must not be
//! reordered. `CircuitTable` stamps outgoing messages and classifies
//! incoming ones; a transport that can reorder, duplicate, or drop
//! (the simulator's fault-injection layer does all three) gets a
//! [`Verdict`] per message and recovers — duplicates are discarded,
//! out-of-order arrivals held back until the gap fills or is declared
//! lost — instead of corrupting protocol state.

use std::collections::HashMap;

use mirage_types::{
    MirageError,
    Result,
    SiteId,
};

use crate::message::Message;

/// Classification of an incoming message against its circuit's expected
/// sequence number.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The next expected message; the circuit advanced past it.
    InOrder,
    /// A sequence number the circuit has already accepted — a duplicate
    /// delivery the receiver must discard.
    Duplicate,
    /// A sequence number beyond the expected one: at least one earlier
    /// message is missing (still in flight, reordered, or lost). The
    /// circuit did *not* advance; the receiver should hold the message
    /// back and either wait for the gap to fill or declare it lost via
    /// [`CircuitTable::advance_to`].
    Gap {
        /// The sequence number the circuit expected.
        expected: u64,
        /// The sequence number that actually arrived.
        got: u64,
    },
}

/// Sequencing state for one site's circuits to all of its peers.
#[derive(Debug, Default)]
pub struct CircuitTable {
    /// Next sequence number to assign, per destination.
    next_out: HashMap<SiteId, u64>,
    /// Next sequence number expected, per source.
    next_in: HashMap<SiteId, u64>,
}

impl CircuitTable {
    /// Creates an empty table; circuits materialize on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stamps an outgoing message with the next sequence number on the
    /// circuit to its destination.
    pub fn stamp<T>(&mut self, msg: &mut Message<T>) {
        msg.seq = self.stamp_seq(msg.dst);
    }

    /// Allocates the next outgoing sequence number toward `dst` (for
    /// transports that carry the sequence out of band).
    pub fn stamp_seq(&mut self, dst: SiteId) -> u64 {
        let seq = self.next_out.entry(dst).or_insert(0);
        let out = *seq;
        *seq += 1;
        out
    }

    /// Classifies an incoming message and advances the circuit when it is
    /// the expected one.
    pub fn check<T>(&mut self, msg: &Message<T>) -> Verdict {
        self.check_seq(msg.src, msg.seq)
    }

    /// Classifies a raw (source, sequence) pair; advances on `InOrder`.
    pub fn check_seq(&mut self, src: SiteId, seq: u64) -> Verdict {
        let expected = self.next_in.entry(src).or_insert(0);
        match seq.cmp(expected) {
            core::cmp::Ordering::Less => Verdict::Duplicate,
            core::cmp::Ordering::Equal => {
                *expected += 1;
                Verdict::InOrder
            }
            core::cmp::Ordering::Greater => Verdict::Gap { expected: *expected, got: seq },
        }
    }

    /// Declares everything before `seq` on the circuit from `src` lost,
    /// so held-back messages from `seq` on can be released. Never moves
    /// the expectation backwards.
    pub fn advance_to(&mut self, src: SiteId, seq: u64) {
        let expected = self.next_in.entry(src).or_insert(0);
        if seq > *expected {
            *expected = seq;
        }
    }

    /// Tears down both directions of the circuit with `peer` — the Locus
    /// response to a topology change (site crash/restart): sequence state
    /// restarts from zero and any messages from the old incarnation must
    /// be discarded by the transport.
    pub fn reset_peer(&mut self, peer: SiteId) {
        self.next_out.remove(&peer);
        self.next_in.remove(&peer);
    }

    /// Verifies an incoming message arrived in circuit order.
    ///
    /// # Errors
    ///
    /// Returns [`MirageError::Protocol`] if the sequence number is not the
    /// next expected one for the source's circuit — evidence of loss or
    /// reordering. Transports that want to *recover* (rather than abort)
    /// use [`CircuitTable::check`] and act on the [`Verdict`].
    pub fn verify<T>(&mut self, msg: &Message<T>) -> Result<()> {
        match self.check(msg) {
            Verdict::InOrder => Ok(()),
            Verdict::Duplicate | Verdict::Gap { .. } => {
                Err(MirageError::Protocol("virtual circuit sequence violation"))
            }
        }
    }

    /// Number of outgoing messages stamped toward `dst` so far.
    pub fn sent_to(&self, dst: SiteId) -> u64 {
        self.next_out.get(&dst).copied().unwrap_or(0)
    }

    /// Number of incoming messages verified from `src` so far.
    pub fn received_from(&self, src: SiteId) -> u64 {
        self.next_in.get(&src).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(src: u16, dst: u16) -> Message<()> {
        Message::new(SiteId(src), SiteId(dst), ())
    }

    #[test]
    fn stamps_are_sequential_per_destination() {
        let mut t = CircuitTable::new();
        let mut a = msg(0, 1);
        let mut b = msg(0, 1);
        let mut c = msg(0, 2);
        t.stamp(&mut a);
        t.stamp(&mut b);
        t.stamp(&mut c);
        assert_eq!((a.seq, b.seq, c.seq), (0, 1, 0));
        assert_eq!(t.sent_to(SiteId(1)), 2);
        assert_eq!(t.sent_to(SiteId(2)), 1);
    }

    #[test]
    fn verify_accepts_in_order_rejects_reorder() {
        let mut sender = CircuitTable::new();
        let mut receiver = CircuitTable::new();
        let mut m0 = msg(0, 1);
        let mut m1 = msg(0, 1);
        sender.stamp(&mut m0);
        sender.stamp(&mut m1);
        // Reordered delivery is detected.
        assert!(receiver.verify(&m1).is_err());
        // In-order delivery succeeds.
        assert!(receiver.verify(&m0).is_ok());
        assert!(receiver.verify(&m1).is_ok());
        assert_eq!(receiver.received_from(SiteId(0)), 2);
    }

    #[test]
    fn duplicate_delivery_is_rejected() {
        let mut sender = CircuitTable::new();
        let mut receiver = CircuitTable::new();
        let mut m = msg(0, 1);
        sender.stamp(&mut m);
        assert!(receiver.verify(&m).is_ok());
        assert!(receiver.verify(&m).is_err());
    }

    #[test]
    fn circuits_are_independent_per_source() {
        let mut receiver = CircuitTable::new();
        let mut s0 = CircuitTable::new();
        let mut s2 = CircuitTable::new();
        let mut a = msg(0, 1);
        let mut b = msg(2, 1);
        s0.stamp(&mut a);
        s2.stamp(&mut b);
        assert!(receiver.verify(&a).is_ok());
        assert!(receiver.verify(&b).is_ok());
    }
}
