//! The network message envelope.

use mirage_types::SiteId;

use crate::costs::SizeClass;

/// A payload that knows its wire size class.
///
/// The size class determines transmission cost in the simulator and buffer
/// sizing in the host runtime: short control messages versus 1024-byte
/// page-carrying messages.
pub trait Sized2 {
    /// The size class this payload occupies on the wire.
    fn size_class(&self) -> SizeClass;
}

/// A network message: envelope plus typed payload.
///
/// The envelope mirrors what the Locus virtual-circuit layer stamps on
/// every packet: source, destination, and a per-circuit sequence number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Message<T> {
    /// Sending site.
    pub src: SiteId,
    /// Receiving site.
    pub dst: SiteId,
    /// Per-(src,dst) circuit sequence number, assigned by
    /// [`crate::circuit::CircuitTable::stamp`].
    pub seq: u64,
    /// The protocol payload.
    pub body: T,
}

impl<T: Sized2> Message<T> {
    /// The message's wire size class (delegates to the payload).
    pub fn size_class(&self) -> SizeClass {
        self.body.size_class()
    }
}

impl<T> Message<T> {
    /// Builds an unsequenced message; the circuit table assigns `seq`.
    pub fn new(src: SiteId, dst: SiteId, body: T) -> Self {
        Self { src, dst, seq: 0, body }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct P(SizeClass);
    impl Sized2 for P {
        fn size_class(&self) -> SizeClass {
            self.0
        }
    }

    #[test]
    fn message_size_class_delegates_to_payload() {
        let m = Message::new(SiteId(0), SiteId(1), P(SizeClass::Large));
        assert_eq!(m.size_class(), SizeClass::Large);
        assert_eq!(m.seq, 0);
    }
}
