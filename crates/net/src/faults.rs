//! Deterministic fault plans: what the network is allowed to do wrong.
//!
//! The paper inherits reliable, ordered delivery from Locus virtual
//! circuits and defers site failure to the OS's topology-change
//! machinery (§7.1). This module describes the adversary we test that
//! inheritance against: a [`FaultPlan`] is a *pure description* — a
//! seed, per-link misbehaviour rates, and a site crash/restart
//! schedule. The simulator (`mirage-sim`) interprets the plan; nothing
//! here touches wall-clock time or OS entropy, so a plan plus a seed
//! replays the exact same fault schedule every run.
//!
//! `FaultPlan::none()` is the identity plan: the simulator detects it
//! via [`FaultPlan::is_active`] and installs no fault machinery at all,
//! so a disabled plan is byte-identical to not having the layer.

use mirage_types::{
    SimDuration,
    SimTime,
    SiteId,
};

/// Misbehaviour rates for one directed link, in parts per 10 000.
///
/// Each unicast message consults the rates independently: first whether
/// it is dropped, then whether a duplicate is injected, then whether
/// its delivery is delayed by a uniform extra latency up to
/// [`LinkFaults::max_delay`]. Delaying some messages and not others is
/// how reordering arises — the plan needs no separate reorder knob.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkFaults {
    /// Probability the message is silently dropped (per 10 000).
    pub drop_pm: u32,
    /// Probability a duplicate copy is also delivered (per 10 000).
    pub dup_pm: u32,
    /// Probability the message is delayed (per 10 000).
    pub delay_pm: u32,
    /// Maximum extra latency added to a delayed message.
    pub max_delay: SimDuration,
}

impl LinkFaults {
    /// A perfectly behaved link.
    pub const RELIABLE: LinkFaults =
        LinkFaults { drop_pm: 0, dup_pm: 0, delay_pm: 0, max_delay: SimDuration(0) };

    /// Whether this link can ever misbehave.
    pub fn is_faulty(&self) -> bool {
        self.drop_pm > 0 || self.dup_pm > 0 || self.delay_pm > 0
    }
}

impl Default for LinkFaults {
    fn default() -> Self {
        Self::RELIABLE
    }
}

/// One scheduled crash/restart of a site.
///
/// At `at` the site halts: its volatile protocol state (queues, timers,
/// in-flight rounds) is lost, every process on it freezes, and all of
/// its virtual circuits are severed — messages from the old incarnation
/// still in flight are discarded on delivery, matching Locus tearing
/// down circuits on a topology change. At `back_at` the site restarts
/// with cold volatile state and recovers from its persistent tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashEvent {
    /// The site that fails.
    pub site: SiteId,
    /// Simulated time of the crash.
    pub at: SimTime,
    /// Simulated time of the restart; must be later than `at`.
    pub back_at: SimTime,
}

/// A complete, replayable description of network and site misbehaviour.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the fault-side PRNG. Same plan + same seed + same
    /// workload ⇒ the identical fault schedule, event for event.
    pub seed: u64,
    /// After this simulated time the network behaves perfectly —
    /// the "storm horizon". Lets a run end with a clean window so the
    /// harness can check that the protocol *converges*, not merely
    /// that it survives.
    pub horizon: SimTime,
    /// Fault rates applied to every link without an explicit override.
    pub default_link: LinkFaults,
    /// Per-link overrides as `((src, dst), rates)`; directed.
    pub links: Vec<((SiteId, SiteId), LinkFaults)>,
    /// Scheduled site crash/restart events.
    pub crashes: Vec<CrashEvent>,
    /// How long a receiver holds back an out-of-order message waiting
    /// for the gap to fill before declaring the missing messages lost.
    pub gap_wait: SimDuration,
}

impl FaultPlan {
    /// The identity plan: no faults, ever. [`FaultPlan::is_active`]
    /// returns `false`, and the simulator installs no fault machinery.
    pub fn none() -> Self {
        Self {
            seed: 0,
            horizon: SimTime(0),
            default_link: LinkFaults::RELIABLE,
            links: Vec::new(),
            crashes: Vec::new(),
            gap_wait: SimDuration::from_millis(40),
        }
    }

    /// Whether this plan can inject any fault at all.
    pub fn is_active(&self) -> bool {
        self.default_link.is_faulty()
            || self.links.iter().any(|(_, f)| f.is_faulty())
            || !self.crashes.is_empty()
    }

    /// The fault rates in effect on the directed link `src → dst`.
    pub fn link(&self, src: SiteId, dst: SiteId) -> LinkFaults {
        self.links
            .iter()
            .find(|((s, d), _)| *s == src && *d == dst)
            .map(|(_, f)| *f)
            .unwrap_or(self.default_link)
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inactive() {
        let p = FaultPlan::none();
        assert!(!p.is_active());
        assert_eq!(p.link(SiteId(0), SiteId(1)), LinkFaults::RELIABLE);
    }

    #[test]
    fn any_fault_rate_activates() {
        let mut p = FaultPlan::none();
        p.default_link.drop_pm = 1;
        assert!(p.is_active());

        let mut p = FaultPlan::none();
        p.links
            .push(((SiteId(0), SiteId(1)), LinkFaults { dup_pm: 50, ..LinkFaults::RELIABLE }));
        assert!(p.is_active());

        let mut p = FaultPlan::none();
        p.crashes.push(CrashEvent { site: SiteId(1), at: SimTime(10), back_at: SimTime(20) });
        assert!(p.is_active());
    }

    #[test]
    fn link_overrides_are_directed() {
        let mut p = FaultPlan::none();
        let noisy = LinkFaults { drop_pm: 100, ..LinkFaults::RELIABLE };
        p.links.push(((SiteId(0), SiteId(1)), noisy));
        assert_eq!(p.link(SiteId(0), SiteId(1)), noisy);
        // The reverse direction keeps the default.
        assert_eq!(p.link(SiteId(1), SiteId(0)), LinkFaults::RELIABLE);
    }
}
