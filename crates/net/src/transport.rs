//! Sequenced byte transports: ordered, framed, reconnectable circuits.
//!
//! The Locus layer the paper assumes (§7.1) gives the DSM protocol
//! ordered, non-duplicated delivery between each pair of sites. This
//! module abstracts that contract behind one narrow trait,
//! [`SequencedTransport`], so every runtime speaks it unchanged over
//! three very different wires:
//!
//! * [`ChannelNet`] — in-process `mpsc` channels (the original host
//!   runtime wire; zero configuration, never reconnects);
//! * [`StreamTransport`] over [`Endpoint::Uds`] — Unix-domain sockets
//!   between OS processes on one machine;
//! * [`StreamTransport`] over [`Endpoint::Tcp`] — TCP sockets.
//!
//! Stream transports frame messages with the [`crate::frame`] codec and
//! open every connection with an incarnation-stamped [`crate::frame::Hello`].
//! On the receive side a [`SequencedIn`] layers the existing
//! [`CircuitTable`] gap/duplicate verdicts on top: duplicates are
//! dropped, frames from a superseded incarnation are dropped (the
//! restarted process severed those circuits), and a gap — bytes lost
//! across a reconnect — releases the frame after advancing the circuit,
//! leaving recovery to the protocol's retransmit chains (PR 3), which
//! over these wires finally do real work.

use std::collections::HashMap;
use std::io::{
    Read,
    Write,
};
use std::net::{
    TcpListener,
    TcpStream,
};
use std::os::unix::net::{
    UnixListener,
    UnixStream,
};
use std::path::PathBuf;
use std::sync::atomic::{
    AtomicBool,
    AtomicU64,
    Ordering,
};
use std::sync::mpsc::{
    channel,
    Receiver,
    RecvTimeoutError,
    Sender,
};
use std::sync::Arc;
use std::time::{
    Duration,
    Instant,
};

use mirage_types::SiteId;

use crate::circuit::{
    CircuitTable,
    Verdict,
};
use crate::frame::{
    decode_hello,
    encode_frame,
    encode_hello,
    FrameDecoder,
    Hello,
    HELLO_LEN,
};

/// A frame delivered by a transport, already sequenced: in order per
/// peer, never a duplicate, never from a stale incarnation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PeerFrame {
    /// The sending site.
    pub from: SiteId,
    /// The protocol message bytes.
    pub payload: Vec<u8>,
}

/// What a [`SequencedTransport::recv_timeout`] call produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportEvent {
    /// An in-order frame from a peer.
    Frame(PeerFrame),
    /// Nothing arrived within the timeout.
    Timeout,
    /// The transport can never deliver again (every peer endpoint is
    /// gone); the kernel servicing it should shut down.
    Closed,
}

/// Delivery and filtering counters, mirrored into the host metrics
/// registry as `wire.*`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Frames handed to the wire.
    pub tx_frames: u64,
    /// Encoded frame bytes handed to the wire (including headers).
    pub tx_bytes: u64,
    /// Frames the send path dropped because the peer was unreachable
    /// even after a reconnect attempt (protocol retries recover).
    pub tx_dropped: u64,
    /// In-order frames delivered.
    pub rx_frames: u64,
    /// Payload bytes delivered.
    pub rx_bytes: u64,
    /// Duplicate frames discarded by the circuit check.
    pub rx_dup: u64,
    /// Frames discarded for carrying a superseded incarnation.
    pub rx_stale: u64,
    /// Sequence gaps accepted (messages declared lost across a
    /// reconnect before this frame was released).
    pub rx_gap: u64,
    /// Outbound connections (re)established.
    pub reconnects: u64,
}

/// An ordered, framed, reconnectable byte circuit fabric for one site.
///
/// The contract every implementation honors:
///
/// * frames from one peer are delivered in send order, never duplicated
///   (the [`SequencedIn`] filter enforces this even if the wire below
///   reconnects mid-stream);
/// * a frame may be silently lost when a connection breaks — loss is
///   the protocol retry layer's job, not the transport's;
/// * frames from an earlier incarnation of a peer are never delivered
///   once a later incarnation has been heard from.
pub trait SequencedTransport: Send {
    /// The site this transport serves.
    fn site(&self) -> SiteId;

    /// This process's incarnation (0 for in-process transports).
    fn incarnation(&self) -> u64;

    /// Queues `payload` toward `to` on that peer's circuit. Best-effort:
    /// an unreachable peer costs a reconnect attempt, then the frame is
    /// dropped and counted.
    fn send(&mut self, to: SiteId, payload: &[u8]);

    /// Waits up to `timeout` for the next in-order frame.
    fn recv_timeout(&mut self, timeout: Duration) -> TransportEvent;

    /// Delivery/filtering counters so far.
    fn stats(&self) -> TransportStats;
}

/// How a [`SequencedIn`] classified an arriving frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InVerdict {
    /// Deliver: the next expected frame on the circuit.
    Deliver,
    /// Deliver, after declaring this many earlier frames lost (a
    /// reconnect dropped them; the protocol retry chains re-drive).
    DeliverAfterGap(u64),
    /// Drop: already delivered (reconnect replay or wire duplicate).
    DropDuplicate,
    /// Drop: sent by a superseded incarnation of the peer.
    DropStale,
}

/// The receive-side sequencing filter: per-peer incarnation tracking
/// with [`CircuitTable`] verdicts layered on top.
#[derive(Debug, Default)]
pub struct SequencedIn {
    circuits: CircuitTable,
    incarnations: HashMap<SiteId, u64>,
}

impl SequencedIn {
    /// An empty filter; circuits materialize on first frame.
    pub fn new() -> Self {
        Self::default()
    }

    /// Classifies a frame stamped (`from`, `incarnation`, `seq`) and
    /// advances the circuit state for everything except drops.
    pub fn accept(&mut self, from: SiteId, incarnation: u64, seq: u64) -> InVerdict {
        match self.incarnations.get(&from).copied() {
            Some(cur) if incarnation < cur => return InVerdict::DropStale,
            Some(cur) if incarnation > cur => {
                // The peer restarted: sever the old circuit entirely.
                self.circuits.reset_peer(from);
                self.incarnations.insert(from, incarnation);
            }
            Some(_) => {}
            None => {
                self.incarnations.insert(from, incarnation);
            }
        }
        match self.circuits.check_seq(from, seq) {
            Verdict::InOrder => InVerdict::Deliver,
            Verdict::Duplicate => InVerdict::DropDuplicate,
            Verdict::Gap { expected, got } => {
                // A stream below us never reorders, so a gap means the
                // missing frames died with a broken connection. Declare
                // them lost and release this frame.
                self.circuits.advance_to(from, got + 1);
                InVerdict::DeliverAfterGap(got - expected)
            }
        }
    }
}

/// A raw frame as reader threads and channel peers hand it over, before
/// the sequencing filter has ruled on it.
#[derive(Debug)]
struct RawFrame {
    from: SiteId,
    incarnation: u64,
    seq: u64,
    payload: Vec<u8>,
}

// ---------------------------------------------------------------------
// In-process channel wire.
// ---------------------------------------------------------------------

/// Factory for the in-process channel wire: one fully-connected set of
/// [`ChannelTransport`]s, one per site.
pub struct ChannelNet;

impl ChannelNet {
    /// Builds `n` mutually-connected channel transports.
    pub fn fabric(n: usize) -> Vec<ChannelTransport> {
        let pairs: Vec<(Sender<RawFrame>, Receiver<RawFrame>)> =
            (0..n).map(|_| channel()).collect();
        let senders: Vec<Sender<RawFrame>> = pairs.iter().map(|(s, _)| s.clone()).collect();
        pairs
            .into_iter()
            .enumerate()
            .map(|(i, (_, rx))| ChannelTransport {
                site: SiteId(i as u16),
                peers: senders.clone(),
                rx,
                out: CircuitTable::new(),
                inbound: SequencedIn::new(),
                stats: TransportStats::default(),
            })
            .collect()
    }
}

/// The original host-runtime wire: in-process `mpsc` channels, now
/// speaking the same sequenced-circuit contract as the socket wires.
pub struct ChannelTransport {
    site: SiteId,
    peers: Vec<Sender<RawFrame>>,
    rx: Receiver<RawFrame>,
    out: CircuitTable,
    inbound: SequencedIn,
    stats: TransportStats,
}

impl SequencedTransport for ChannelTransport {
    fn site(&self) -> SiteId {
        self.site
    }

    fn incarnation(&self) -> u64 {
        0
    }

    fn send(&mut self, to: SiteId, payload: &[u8]) {
        let seq = self.out.stamp_seq(to);
        self.stats.tx_frames += 1;
        self.stats.tx_bytes += (crate::frame::FRAME_HEADER + 4 + payload.len()) as u64;
        // A dead peer during shutdown is fine.
        if self.peers[to.index()]
            .send(RawFrame { from: self.site, incarnation: 0, seq, payload: payload.to_vec() })
            .is_err()
        {
            self.stats.tx_dropped += 1;
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> TransportEvent {
        let deadline = Instant::now() + timeout;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            match self.rx.recv_timeout(left) {
                Ok(raw) => match self.inbound.accept(raw.from, raw.incarnation, raw.seq) {
                    InVerdict::Deliver | InVerdict::DeliverAfterGap(_) => {
                        self.stats.rx_frames += 1;
                        self.stats.rx_bytes += raw.payload.len() as u64;
                        return TransportEvent::Frame(PeerFrame {
                            from: raw.from,
                            payload: raw.payload,
                        });
                    }
                    InVerdict::DropDuplicate => self.stats.rx_dup += 1,
                    InVerdict::DropStale => self.stats.rx_stale += 1,
                },
                Err(RecvTimeoutError::Timeout) => return TransportEvent::Timeout,
                Err(RecvTimeoutError::Disconnected) => return TransportEvent::Closed,
            }
        }
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }
}

// ---------------------------------------------------------------------
// Stream (socket) wire: Unix-domain and TCP.
// ---------------------------------------------------------------------

/// A dialable address for one site of a socket-backed cluster.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// A Unix-domain socket path.
    Uds(PathBuf),
    /// A TCP address, e.g. `127.0.0.1:7400`.
    Tcp(String),
}

impl core::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Endpoint::Uds(p) => write!(f, "uds:{}", p.display()),
            Endpoint::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

impl Endpoint {
    /// Parses the `uds:<path>` / `tcp:<addr>` forms of [`Endpoint`]'s
    /// `Display` output (manifest files round-trip through this).
    pub fn parse(s: &str) -> Option<Endpoint> {
        if let Some(p) = s.strip_prefix("uds:") {
            Some(Endpoint::Uds(PathBuf::from(p)))
        } else {
            s.strip_prefix("tcp:").map(|a| Endpoint::Tcp(a.to_string()))
        }
    }
}

/// One accepted or dialed stream, behind an enum so Unix-domain and TCP
/// share every code path.
enum Stream {
    Uds(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    fn connect(ep: &Endpoint) -> std::io::Result<Stream> {
        match ep {
            Endpoint::Uds(path) => UnixStream::connect(path).map(Stream::Uds),
            Endpoint::Tcp(addr) => {
                let s = TcpStream::connect(addr.as_str())?;
                s.set_nodelay(true)?;
                Ok(Stream::Tcp(s))
            }
        }
    }

    fn set_read_timeout(&self, d: Duration) -> std::io::Result<()> {
        match self {
            Stream::Uds(s) => s.set_read_timeout(Some(d)),
            Stream::Tcp(s) => s.set_read_timeout(Some(d)),
        }
    }

    fn write_all_bytes(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        match self {
            Stream::Uds(s) => s.write_all(bytes),
            Stream::Tcp(s) => s.write_all(bytes),
        }
    }

    fn read_some(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Uds(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

/// A listener bound ahead of transport construction, so ephemeral TCP
/// ports are known (and can go into a manifest) before anyone dials.
pub struct BoundListener {
    inner: ListenerInner,
    endpoint: Endpoint,
}

enum ListenerInner {
    Uds(UnixListener),
    Tcp(TcpListener),
}

impl BoundListener {
    /// Binds `ep`. For `tcp:…:0` the endpoint is rewritten with the
    /// kernel-assigned port; for a Unix path any stale socket file from
    /// a killed previous incarnation is removed first.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(ep: &Endpoint) -> std::io::Result<BoundListener> {
        match ep {
            Endpoint::Uds(path) => {
                let _ = std::fs::remove_file(path);
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                Ok(BoundListener { inner: ListenerInner::Uds(l), endpoint: ep.clone() })
            }
            Endpoint::Tcp(addr) => {
                let l = TcpListener::bind(addr.as_str())?;
                l.set_nonblocking(true)?;
                let actual = l.local_addr()?;
                Ok(BoundListener {
                    inner: ListenerInner::Tcp(l),
                    endpoint: Endpoint::Tcp(actual.to_string()),
                })
            }
        }
    }

    /// The dialable endpoint (with the real port for `tcp:…:0` binds).
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    fn accept(&self) -> std::io::Result<Stream> {
        match &self.inner {
            ListenerInner::Uds(l) => l.accept().map(|(s, _)| Stream::Uds(s)),
            ListenerInner::Tcp(l) => l.accept().map(|(s, _)| {
                let _ = s.set_nodelay(true);
                Stream::Tcp(s)
            }),
        }
    }
}

/// How long reader threads block in `read(2)` between stop-flag checks.
const READER_POLL: Duration = Duration::from_millis(25);

/// One established outbound connection.
struct OutConn {
    stream: Stream,
}

/// A socket-backed [`SequencedTransport`]: one listener for inbound
/// circuits, lazily-dialed outbound connections with a one-shot
/// reconnect on failure, frame integrity from [`crate::frame`], and the
/// [`SequencedIn`] filter above the wire.
pub struct StreamTransport {
    site: SiteId,
    incarnation: u64,
    endpoints: Vec<Option<Endpoint>>,
    out: Vec<Option<OutConn>>,
    circuits: CircuitTable,
    inbound: SequencedIn,
    rx: Receiver<RawFrame>,
    stats: TransportStats,
    rx_stale_shared: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
    uds_path: Option<PathBuf>,
}

impl StreamTransport {
    /// Starts the transport for `site`: takes the pre-bound listener,
    /// spawns the acceptor thread, and records how to dial every peer.
    /// `endpoints[i]` addresses site `i`; the entry for `site` itself is
    /// ignored.
    pub fn start(
        site: SiteId,
        incarnation: u64,
        listener: BoundListener,
        endpoints: Vec<Endpoint>,
    ) -> StreamTransport {
        let (tx, rx) = channel::<RawFrame>();
        let stop = Arc::new(AtomicBool::new(false));
        let rx_stale_shared = Arc::new(AtomicU64::new(0));
        let uds_path = match listener.endpoint() {
            Endpoint::Uds(p) => Some(p.clone()),
            Endpoint::Tcp(_) => None,
        };
        let stop2 = Arc::clone(&stop);
        let accept_handle = std::thread::Builder::new()
            .name(format!("mirage-accept-{}", site.0))
            .spawn(move || acceptor_main(listener, tx, stop2))
            .expect("spawn acceptor thread");
        StreamTransport {
            site,
            incarnation,
            endpoints: endpoints.into_iter().map(Some).collect(),
            out: Vec::new(),
            circuits: CircuitTable::new(),
            inbound: SequencedIn::new(),
            rx,
            stats: TransportStats::default(),
            rx_stale_shared,
            stop,
            accept_handle: Some(accept_handle),
            uds_path,
        }
    }

    /// Dials `to` and performs the handshake.
    fn connect(&mut self, to: SiteId) -> Option<Stream> {
        let ep = self.endpoints.get(to.index()).and_then(|e| e.as_ref())?;
        let mut stream = Stream::connect(ep).ok()?;
        let hello = encode_hello(&Hello { from: self.site, incarnation: self.incarnation });
        stream.write_all_bytes(&hello).ok()?;
        self.stats.reconnects += 1;
        Some(stream)
    }

    /// Writes one frame toward `to`, reconnecting once on failure.
    fn write_frame(&mut self, to: SiteId, wire: &[u8]) -> bool {
        let idx = to.index();
        if self.out.len() <= idx {
            self.out.resize_with(idx + 1, || None);
        }
        for attempt in 0..2 {
            if self.out[idx].is_none() {
                match self.connect(to) {
                    Some(stream) => self.out[idx] = Some(OutConn { stream }),
                    None => return false,
                }
            }
            let ok = self.out[idx]
                .as_mut()
                .map(|c| c.stream.write_all_bytes(wire).is_ok())
                .unwrap_or(false);
            if ok {
                return true;
            }
            // Broken connection: drop it; the second pass redials.
            self.out[idx] = None;
            let _ = attempt;
        }
        false
    }
}

impl SequencedTransport for StreamTransport {
    fn site(&self) -> SiteId {
        self.site
    }

    fn incarnation(&self) -> u64 {
        self.incarnation
    }

    fn send(&mut self, to: SiteId, payload: &[u8]) {
        let seq = self.circuits.stamp_seq(to);
        let mut wire = Vec::with_capacity(20 + payload.len());
        encode_frame(seq, payload, &mut wire);
        self.stats.tx_frames += 1;
        self.stats.tx_bytes += wire.len() as u64;
        if !self.write_frame(to, &wire) {
            self.stats.tx_dropped += 1;
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> TransportEvent {
        let deadline = Instant::now() + timeout;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            match self.rx.recv_timeout(left) {
                Ok(raw) => match self.inbound.accept(raw.from, raw.incarnation, raw.seq) {
                    InVerdict::Deliver => {
                        self.stats.rx_frames += 1;
                        self.stats.rx_bytes += raw.payload.len() as u64;
                        return TransportEvent::Frame(PeerFrame {
                            from: raw.from,
                            payload: raw.payload,
                        });
                    }
                    InVerdict::DeliverAfterGap(lost) => {
                        self.stats.rx_gap += lost;
                        self.stats.rx_frames += 1;
                        self.stats.rx_bytes += raw.payload.len() as u64;
                        return TransportEvent::Frame(PeerFrame {
                            from: raw.from,
                            payload: raw.payload,
                        });
                    }
                    InVerdict::DropDuplicate => self.stats.rx_dup += 1,
                    InVerdict::DropStale => {
                        self.stats.rx_stale += 1;
                        self.rx_stale_shared.fetch_add(1, Ordering::Relaxed);
                    }
                },
                Err(RecvTimeoutError::Timeout) => return TransportEvent::Timeout,
                // The acceptor thread only exits on stop; treat as closed.
                Err(RecvTimeoutError::Disconnected) => return TransportEvent::Closed,
            }
        }
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }
}

impl Drop for StreamTransport {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        if let Some(path) = &self.uds_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Accept loop: polls the non-blocking listener, spawns one reader
/// thread per accepted connection. Reader threads are detached; they
/// exit on EOF, on any framing error, or when the stop flag rises.
fn acceptor_main(listener: BoundListener, tx: Sender<RawFrame>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok(stream) => {
                let tx2 = tx.clone();
                let stop2 = Arc::clone(&stop);
                let _ = std::thread::Builder::new()
                    .name("mirage-reader".into())
                    .spawn(move || reader_main(stream, tx2, stop2));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Per-connection reader: handshake, then frames until the stream dies.
fn reader_main(mut stream: Stream, tx: Sender<RawFrame>, stop: Arc<AtomicBool>) {
    if stream.set_read_timeout(READER_POLL).is_err() {
        return;
    }
    // Read the fixed-size hello first.
    let mut hello_buf = [0u8; HELLO_LEN];
    let mut filled = 0usize;
    let hello_deadline = Instant::now() + Duration::from_secs(5);
    while filled < HELLO_LEN {
        if stop.load(Ordering::Acquire) || Instant::now() > hello_deadline {
            return;
        }
        match stream.read_some(&mut hello_buf[filled..]) {
            Ok(0) => return,
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return,
        }
    }
    let Ok(hello) = decode_hello(&hello_buf) else {
        return;
    };
    let mut decoder = FrameDecoder::new();
    let mut buf = [0u8; 16 * 1024];
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        match stream.read_some(&mut buf) {
            Ok(0) => return,
            Ok(n) => {
                decoder.push(&buf[..n]);
                loop {
                    match decoder.next_frame() {
                        Ok(Some(frame)) => {
                            if tx
                                .send(RawFrame {
                                    from: hello.from,
                                    incarnation: hello.incarnation,
                                    seq: frame.seq,
                                    payload: frame.payload,
                                })
                                .is_err()
                            {
                                return;
                            }
                        }
                        Ok(None) => break,
                        // Corrupt stream: kill the connection; the
                        // sender reconnects and the retry chains
                        // re-drive whatever was in flight.
                        Err(_) => return,
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequenced_in_orders_dedups_and_severs() {
        let mut f = SequencedIn::new();
        let p = SiteId(3);
        assert_eq!(f.accept(p, 1, 0), InVerdict::Deliver);
        assert_eq!(f.accept(p, 1, 1), InVerdict::Deliver);
        assert_eq!(f.accept(p, 1, 1), InVerdict::DropDuplicate);
        // Two frames lost across a reconnect: gap is declared, released.
        assert_eq!(f.accept(p, 1, 4), InVerdict::DeliverAfterGap(2));
        assert_eq!(f.accept(p, 1, 5), InVerdict::Deliver);
        // A restarted peer severs the circuit and starts from zero...
        assert_eq!(f.accept(p, 2, 0), InVerdict::Deliver);
        // ...and anything still arriving from the old incarnation dies.
        assert_eq!(f.accept(p, 1, 6), InVerdict::DropStale);
    }

    #[test]
    fn channel_net_delivers_in_order() {
        let mut ts = ChannelNet::fabric(2);
        let mut b = ts.pop().unwrap();
        let mut a = ts.pop().unwrap();
        a.send(SiteId(1), b"one");
        a.send(SiteId(1), b"two");
        let e1 = b.recv_timeout(Duration::from_secs(1));
        let e2 = b.recv_timeout(Duration::from_secs(1));
        assert_eq!(
            e1,
            TransportEvent::Frame(PeerFrame { from: SiteId(0), payload: b"one".to_vec() })
        );
        assert_eq!(
            e2,
            TransportEvent::Frame(PeerFrame { from: SiteId(0), payload: b"two".to_vec() })
        );
        assert_eq!(b.recv_timeout(Duration::from_millis(5)), TransportEvent::Timeout);
        assert_eq!(b.stats().rx_frames, 2);
        assert_eq!(a.stats().tx_frames, 2);
    }

    fn uds_pair(tag: &str) -> (StreamTransport, StreamTransport) {
        let dir = std::env::temp_dir().join(format!("mirage-net-test-{tag}-{}", unique()));
        std::fs::create_dir_all(&dir).unwrap();
        let eps = vec![Endpoint::Uds(dir.join("s0.sock")), Endpoint::Uds(dir.join("s1.sock"))];
        let l0 = BoundListener::bind(&eps[0]).unwrap();
        let l1 = BoundListener::bind(&eps[1]).unwrap();
        let t0 = StreamTransport::start(SiteId(0), 1, l0, eps.clone());
        let t1 = StreamTransport::start(SiteId(1), 1, l1, eps);
        (t0, t1)
    }

    fn unique() -> u64 {
        use std::sync::atomic::AtomicU64;
        static N: AtomicU64 = AtomicU64::new(0);
        (std::process::id() as u64) << 20 | N.fetch_add(1, Ordering::Relaxed)
    }

    fn expect_frame(t: &mut StreamTransport, secs: u64) -> PeerFrame {
        match t.recv_timeout(Duration::from_secs(secs)) {
            TransportEvent::Frame(f) => f,
            other => panic!("expected frame, got {other:?}"),
        }
    }

    #[test]
    fn uds_round_trip_both_directions() {
        let (mut t0, mut t1) = uds_pair("rt");
        t0.send(SiteId(1), b"ping");
        let f = expect_frame(&mut t1, 5);
        assert_eq!((f.from, f.payload.as_slice()), (SiteId(0), b"ping".as_slice()));
        t1.send(SiteId(0), b"pong");
        let f = expect_frame(&mut t0, 5);
        assert_eq!((f.from, f.payload.as_slice()), (SiteId(1), b"pong".as_slice()));
    }

    #[test]
    fn tcp_round_trip() {
        let l0 = BoundListener::bind(&Endpoint::Tcp("127.0.0.1:0".into())).unwrap();
        let l1 = BoundListener::bind(&Endpoint::Tcp("127.0.0.1:0".into())).unwrap();
        let eps = vec![l0.endpoint().clone(), l1.endpoint().clone()];
        let mut t0 = StreamTransport::start(SiteId(0), 1, l0, eps.clone());
        let mut t1 = StreamTransport::start(SiteId(1), 1, l1, eps);
        t0.send(SiteId(1), &[7u8; 600]);
        let f = expect_frame(&mut t1, 5);
        assert_eq!(f.payload, vec![7u8; 600]);
    }

    #[test]
    fn restarted_peer_supersedes_old_incarnation() {
        let dir = std::env::temp_dir().join(format!("mirage-net-test-inc-{}", unique()));
        std::fs::create_dir_all(&dir).unwrap();
        let eps = vec![Endpoint::Uds(dir.join("s0.sock")), Endpoint::Uds(dir.join("s1.sock"))];
        let l1 = BoundListener::bind(&eps[1]).unwrap();
        let mut t1 = StreamTransport::start(SiteId(1), 1, l1, eps.clone());
        // Incarnation 1 of site 0 speaks, then "crashes"; incarnation 2
        // takes over; a straggler from incarnation 1 must be dropped.
        let l0a = BoundListener::bind(&eps[0]).unwrap();
        let mut t0a = StreamTransport::start(SiteId(0), 1, l0a, eps.clone());
        t0a.send(SiteId(1), b"old-1");
        assert_eq!(expect_frame(&mut t1, 5).payload, b"old-1".to_vec());
        let l0b = BoundListener::bind(&eps[0]).unwrap();
        let mut t0b = StreamTransport::start(SiteId(0), 2, l0b, eps.clone());
        t0b.send(SiteId(1), b"new-1");
        assert_eq!(expect_frame(&mut t1, 5).payload, b"new-1".to_vec());
        // The old incarnation's connection is still open: its frame
        // arrives but must be filtered, not delivered.
        t0a.send(SiteId(1), b"old-2");
        t0b.send(SiteId(1), b"new-2");
        assert_eq!(expect_frame(&mut t1, 5).payload, b"new-2".to_vec());
        let stats = t1.stats();
        assert_eq!(stats.rx_stale, 1, "stale-incarnation frame dropped");
    }

    #[test]
    fn endpoint_display_parse_round_trip() {
        for ep in
            [Endpoint::Uds(PathBuf::from("/tmp/x.sock")), Endpoint::Tcp("127.0.0.1:9".into())]
        {
            assert_eq!(Endpoint::parse(&ep.to_string()), Some(ep));
        }
        assert_eq!(Endpoint::parse("bogus"), None);
    }
}
