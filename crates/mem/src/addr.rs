//! Per-process virtual address spaces for segment attachment.
//!
//! §2.2: "processes attach the segment into their virtual memory address
//! space by name. The attaching process can choose the exact virtual
//! address range. Alternately, the process may elect to place the segment
//! at a first-fit location in the address space. Unlike other sharing
//! models, processes can share locations at different virtual address
//! ranges."

use mirage_types::{
    MirageError,
    PageNum,
    Result,
    SegmentId,
    PAGE_SIZE,
};

/// Default bottom of the shared-memory attach region.
pub const SHM_BASE: usize = 0x1000_0000;
/// Default top (exclusive) of the shared-memory attach region.
pub const SHM_TOP: usize = 0x2000_0000;

/// One attached segment: where it lives in this process's address space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Attachment {
    /// The attached segment.
    pub segment: SegmentId,
    /// First virtual address of the attachment.
    pub base: usize,
    /// Length in bytes (the segment size).
    pub len: usize,
    /// Whether the attach was read-only.
    pub read_only: bool,
}

impl Attachment {
    /// True if the attachment covers `addr`.
    pub fn covers(&self, addr: usize) -> bool {
        addr >= self.base && addr < self.base + self.len
    }
}

/// The result of resolving a virtual address.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Resolved {
    /// The segment the address falls in.
    pub segment: SegmentId,
    /// The page within the segment.
    pub page: PageNum,
    /// Byte offset within the page.
    pub offset: usize,
    /// Whether the covering attachment is read-only.
    pub read_only: bool,
}

/// A process's shared-memory address space: a set of non-overlapping
/// attachments within `[SHM_BASE, SHM_TOP)`.
#[derive(Clone, Debug)]
pub struct AddressSpace {
    attachments: Vec<Attachment>,
}

impl AddressSpace {
    /// An address space with nothing attached.
    pub fn new() -> Self {
        Self { attachments: Vec::new() }
    }

    /// Attaches a segment at the caller-chosen address.
    ///
    /// # Errors
    ///
    /// [`MirageError::BadAddress`] if the address is not page-aligned,
    /// out of range, or overlaps an existing attachment;
    /// [`MirageError::AlreadyAttached`] if the segment is already mapped.
    pub fn attach_at(
        &mut self,
        segment: SegmentId,
        size: usize,
        addr: usize,
        read_only: bool,
    ) -> Result<Attachment> {
        if !addr.is_multiple_of(PAGE_SIZE)
            || addr < SHM_BASE
            || addr.saturating_add(size) > SHM_TOP
        {
            return Err(MirageError::BadAddress { addr });
        }
        self.insert(segment, addr, size, read_only)
    }

    /// Attaches a segment at the first address range that fits
    /// (System V `shmat(..., NULL, ...)` behaviour).
    ///
    /// # Errors
    ///
    /// [`MirageError::AddressSpaceFull`] if no gap is large enough;
    /// [`MirageError::AlreadyAttached`] if the segment is already mapped.
    pub fn attach_first_fit(
        &mut self,
        segment: SegmentId,
        size: usize,
        read_only: bool,
    ) -> Result<Attachment> {
        let mut candidate = SHM_BASE;
        // Attachments are kept sorted by base; scan gaps.
        for a in &self.attachments {
            if candidate + size <= a.base {
                break;
            }
            candidate = a.base + a.len;
            // Keep page alignment after odd-sized historical attachments.
            candidate = candidate.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        }
        if candidate + size > SHM_TOP {
            return Err(MirageError::AddressSpaceFull);
        }
        self.insert(segment, candidate, size, read_only)
    }

    fn insert(
        &mut self,
        segment: SegmentId,
        base: usize,
        len: usize,
        read_only: bool,
    ) -> Result<Attachment> {
        if self.attachments.iter().any(|a| a.segment == segment) {
            return Err(MirageError::AlreadyAttached(segment));
        }
        let overlaps =
            self.attachments.iter().any(|a| base < a.base + a.len && a.base < base + len);
        if overlaps {
            return Err(MirageError::BadAddress { addr: base });
        }
        let att = Attachment { segment, base, len, read_only };
        let pos = self.attachments.partition_point(|a| a.base < base);
        self.attachments.insert(pos, att);
        Ok(att)
    }

    /// Detaches a segment. Returns its attachment record.
    ///
    /// # Errors
    ///
    /// [`MirageError::NoSuchSegment`] if the segment is not attached.
    pub fn detach(&mut self, segment: SegmentId) -> Result<Attachment> {
        let pos = self
            .attachments
            .iter()
            .position(|a| a.segment == segment)
            .ok_or(MirageError::NoSuchSegment(segment))?;
        Ok(self.attachments.remove(pos))
    }

    /// Resolves a virtual address to (segment, page, offset).
    ///
    /// # Errors
    ///
    /// [`MirageError::NotAttached`] if no attachment covers the address.
    pub fn resolve(&self, addr: usize) -> Result<Resolved> {
        let a = self
            .attachments
            .iter()
            .find(|a| a.covers(addr))
            .ok_or(MirageError::NotAttached { addr })?;
        let off = addr - a.base;
        Ok(Resolved {
            segment: a.segment,
            page: PageNum::containing(off),
            offset: off % PAGE_SIZE,
            read_only: a.read_only,
        })
    }

    /// The attachments, sorted by base address.
    pub fn attachments(&self) -> &[Attachment] {
        &self.attachments
    }

    /// The base address at which `segment` is attached, if any.
    pub fn base_of(&self, segment: SegmentId) -> Option<usize> {
        self.attachments.iter().find(|a| a.segment == segment).map(|a| a.base)
    }
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use mirage_types::SiteId;

    use super::*;

    fn sid(n: u32) -> SegmentId {
        SegmentId::new(SiteId(0), n)
    }

    #[test]
    fn first_fit_packs_from_base() {
        let mut a = AddressSpace::new();
        let x = a.attach_first_fit(sid(1), 2 * PAGE_SIZE, false).unwrap();
        let y = a.attach_first_fit(sid(2), PAGE_SIZE, false).unwrap();
        assert_eq!(x.base, SHM_BASE);
        assert_eq!(y.base, SHM_BASE + 2 * PAGE_SIZE);
    }

    #[test]
    fn first_fit_fills_gaps_after_detach() {
        let mut a = AddressSpace::new();
        a.attach_first_fit(sid(1), PAGE_SIZE, false).unwrap();
        a.attach_first_fit(sid(2), PAGE_SIZE, false).unwrap();
        a.attach_first_fit(sid(3), PAGE_SIZE, false).unwrap();
        a.detach(sid(2)).unwrap();
        let re = a.attach_first_fit(sid(4), PAGE_SIZE, false).unwrap();
        assert_eq!(re.base, SHM_BASE + PAGE_SIZE, "gap should be reused");
    }

    #[test]
    fn exact_attach_requires_alignment_and_range() {
        let mut a = AddressSpace::new();
        assert!(matches!(
            a.attach_at(sid(1), PAGE_SIZE, SHM_BASE + 3, false),
            Err(MirageError::BadAddress { .. })
        ));
        assert!(matches!(
            a.attach_at(sid(1), PAGE_SIZE, SHM_TOP, false),
            Err(MirageError::BadAddress { .. })
        ));
        assert!(a.attach_at(sid(1), PAGE_SIZE, SHM_BASE + PAGE_SIZE, false).is_ok());
    }

    #[test]
    fn overlapping_attach_rejected() {
        let mut a = AddressSpace::new();
        a.attach_at(sid(1), 2 * PAGE_SIZE, SHM_BASE, false).unwrap();
        assert!(a.attach_at(sid(2), PAGE_SIZE, SHM_BASE + PAGE_SIZE, false).is_err());
    }

    #[test]
    fn double_attach_of_same_segment_rejected() {
        let mut a = AddressSpace::new();
        a.attach_first_fit(sid(1), PAGE_SIZE, false).unwrap();
        assert_eq!(
            a.attach_first_fit(sid(1), PAGE_SIZE, false),
            Err(MirageError::AlreadyAttached(sid(1)))
        );
    }

    #[test]
    fn resolve_computes_page_and_offset() {
        let mut a = AddressSpace::new();
        a.attach_at(sid(1), 4 * PAGE_SIZE, SHM_BASE, true).unwrap();
        let r = a.resolve(SHM_BASE + PAGE_SIZE + 12).unwrap();
        assert_eq!(r.segment, sid(1));
        assert_eq!(r.page, PageNum(1));
        assert_eq!(r.offset, 12);
        assert!(r.read_only);
    }

    #[test]
    fn resolve_outside_attachments_fails() {
        let a = AddressSpace::new();
        assert!(matches!(a.resolve(SHM_BASE), Err(MirageError::NotAttached { .. })));
    }

    #[test]
    fn different_processes_may_use_different_addresses() {
        // "processes can share locations at different virtual address
        // ranges" — two address spaces attach the same segment at
        // different bases, and both resolve to the same (segment, page).
        let mut p1 = AddressSpace::new();
        let mut p2 = AddressSpace::new();
        p1.attach_at(sid(1), PAGE_SIZE, SHM_BASE, false).unwrap();
        p2.attach_at(sid(1), PAGE_SIZE, SHM_BASE + 8 * PAGE_SIZE, false).unwrap();
        let r1 = p1.resolve(SHM_BASE + 100).unwrap();
        let r2 = p2.resolve(SHM_BASE + 8 * PAGE_SIZE + 100).unwrap();
        assert_eq!((r1.segment, r1.page, r1.offset), (r2.segment, r2.page, r2.offset));
    }
}
