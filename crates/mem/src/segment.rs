//! A site's local store for a segment's resident pages.

use mirage_types::{
    PageNum,
    PageProt,
    SegmentId,
    PAGE_SIZE,
};

use crate::page::PageData as LocalPageData;

/// The frames a site currently holds for one segment, plus each frame's
/// hardware protection.
///
/// In the paper this is the set of resident page frames in system space
/// referenced by the master PTEs. Pages not present at the site have no
/// frame ("Mirage needs to mark a page invalid to indicate that a page is
/// not present at this network site", §6.2).
#[derive(Clone, Debug)]
pub struct LocalSegment {
    id: SegmentId,
    frames: Vec<Option<LocalPageData>>,
    prots: Vec<PageProt>,
}

impl LocalSegment {
    /// Creates a local view of a segment with no pages resident.
    pub fn absent(id: SegmentId, pages: usize) -> Self {
        Self { id, frames: vec![None; pages], prots: vec![PageProt::None; pages] }
    }

    /// Creates the creating site's view: every page resident, zero-filled,
    /// writable. The creator is the library site and initially holds the
    /// only (write) copy of every page.
    pub fn fully_resident(id: SegmentId, pages: usize) -> Self {
        Self {
            id,
            frames: (0..pages).map(|_| Some(LocalPageData::zeroed())).collect(),
            prots: vec![PageProt::ReadWrite; pages],
        }
    }

    /// The segment this view belongs to.
    pub fn id(&self) -> SegmentId {
        self.id
    }

    /// Number of pages in the segment.
    pub fn pages(&self) -> usize {
        self.frames.len()
    }

    /// Segment size in bytes.
    pub fn size(&self) -> usize {
        self.pages() * PAGE_SIZE
    }

    /// The hardware protection of a page at this site.
    pub fn prot(&self, page: PageNum) -> PageProt {
        self.prots[page.index()]
    }

    /// Read access to a resident page's data.
    pub fn frame(&self, page: PageNum) -> Option<&LocalPageData> {
        self.frames[page.index()].as_ref()
    }

    /// Write access to a resident page's data.
    ///
    /// Callers must hold write protection; the protocol engines enforce
    /// this, and the accessor does not re-check so that invalidation
    /// handlers can stage data.
    pub fn frame_mut(&mut self, page: PageNum) -> Option<&mut LocalPageData> {
        self.frames[page.index()].as_mut()
    }

    /// Installs a page received from the network with the given
    /// protection.
    pub fn install(&mut self, page: PageNum, data: LocalPageData, prot: PageProt) {
        self.frames[page.index()] = Some(data);
        self.prots[page.index()] = prot;
    }

    /// Changes the protection of a resident page (upgrade/downgrade).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the page is not resident — upgrading an
    /// absent page is a protocol bug.
    pub fn set_prot(&mut self, page: PageNum, prot: PageProt) {
        debug_assert!(
            self.frames[page.index()].is_some() || prot == PageProt::None,
            "cannot grant protection to an absent page"
        );
        self.prots[page.index()] = prot;
    }

    /// Discards the local copy of a page (invalidation: "Our invalidation
    /// unmaps and discards the page", §6.1). Returns the data that was
    /// resident, which the caller may need to forward to the new holder.
    pub fn invalidate(&mut self, page: PageNum) -> Option<LocalPageData> {
        self.prots[page.index()] = PageProt::None;
        self.frames[page.index()].take()
    }

    /// Takes a copy of the page data (for granting a read copy while
    /// retaining the local one).
    pub fn copy_out(&self, page: PageNum) -> Option<LocalPageData> {
        self.frames[page.index()].clone()
    }

    /// The set of resident pages (for remap accounting and assertions).
    pub fn resident_pages(&self) -> impl Iterator<Item = PageNum> + '_ {
        self.frames
            .iter()
            .enumerate()
            .filter(|(_, f)| f.is_some())
            .map(|(i, _)| PageNum(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use mirage_types::SiteId;

    use super::*;

    fn seg() -> LocalSegment {
        LocalSegment::absent(SegmentId::new(SiteId(0), 1), 4)
    }

    #[test]
    fn absent_segment_has_no_frames() {
        let s = seg();
        assert_eq!(s.pages(), 4);
        assert_eq!(s.size(), 4 * PAGE_SIZE);
        for p in 0..4 {
            assert_eq!(s.prot(PageNum(p)), PageProt::None);
            assert!(s.frame(PageNum(p)).is_none());
        }
        assert_eq!(s.resident_pages().count(), 0);
    }

    #[test]
    fn fully_resident_creator_view() {
        let s = LocalSegment::fully_resident(SegmentId::new(SiteId(0), 1), 2);
        assert_eq!(s.resident_pages().count(), 2);
        assert_eq!(s.prot(PageNum(0)), PageProt::ReadWrite);
    }

    #[test]
    fn install_then_invalidate_round_trips_data() {
        let mut s = seg();
        let mut d = LocalPageData::zeroed();
        d.store_u32(0, 77);
        s.install(PageNum(1), d, PageProt::Read);
        assert_eq!(s.prot(PageNum(1)), PageProt::Read);
        assert_eq!(s.frame(PageNum(1)).unwrap().load_u32(0), 77);
        let taken = s.invalidate(PageNum(1)).unwrap();
        assert_eq!(taken.load_u32(0), 77);
        assert_eq!(s.prot(PageNum(1)), PageProt::None);
        assert!(s.frame(PageNum(1)).is_none());
    }

    #[test]
    fn set_prot_upgrades_resident_page() {
        let mut s = seg();
        s.install(PageNum(0), LocalPageData::zeroed(), PageProt::Read);
        s.set_prot(PageNum(0), PageProt::ReadWrite);
        assert_eq!(s.prot(PageNum(0)), PageProt::ReadWrite);
    }

    #[test]
    fn copy_out_leaves_frame_resident() {
        let mut s = seg();
        s.install(PageNum(0), LocalPageData::zeroed(), PageProt::ReadWrite);
        assert!(s.copy_out(PageNum(0)).is_some());
        assert!(s.frame(PageNum(0)).is_some());
    }
}
