//! Memory-management substrate for Mirage.
//!
//! This crate implements the System V shared-memory machinery the paper
//! builds on (§2.2, §6.2), independent of any network protocol:
//!
//! * [`page`] — 512-byte page frames with typed accessors;
//! * [`segment`] — a site's local store for a segment's resident pages;
//! * [`pte`] — master segment page tables and per-process page tables,
//!   with the unused-PTE-bit trick that redirects faults to the auxiliary
//!   table;
//! * [`auxpte`] — the auxiliary parallel page table (Table 2: reader
//!   mask, writer, window ticks, install time);
//! * [`remap`] — the *lazy* consistency method (§6.2): every time a
//!   shared-memory process is scheduled, its PTEs are recopied from the
//!   master;
//! * [`addr`] — per-process virtual address spaces: exact-address or
//!   first-fit attach, address resolution to (segment, page, offset);
//! * [`namespace`] — the System V key→segment registry with
//!   `shmget`/`shmat`/`shmdt` semantics including last-detach-destroys.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod addr;
pub mod auxpte;
pub mod namespace;
pub mod page;
pub mod pte;
pub mod remap;
pub mod segment;

pub use addr::{
    AddressSpace,
    Attachment,
    Resolved,
};
pub use auxpte::{
    AuxPte,
    AuxTable,
};
pub use namespace::{
    AttachFlags,
    Namespace,
    SegmentInfo,
    ShmFlags,
};
pub use page::PageData;
pub use pte::{
    MasterTable,
    ProcessTable,
    Pte,
};
pub use remap::remap_process;
pub use segment::LocalSegment;
