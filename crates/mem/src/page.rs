//! A 512-byte page of shared memory data.

use mirage_types::PAGE_SIZE;

/// The data contents of one page.
///
/// Segments "are not meant to store program text nor system state except
/// as raw data" (§2.2), so `PageData` is plain bytes with typed accessors
/// for the word-sized loads and stores the workloads perform.
#[derive(Clone, PartialEq, Eq)]
pub struct PageData(Box<[u8; PAGE_SIZE]>);

impl PageData {
    /// A zero-filled page.
    pub fn zeroed() -> Self {
        Self(Box::new([0u8; PAGE_SIZE]))
    }

    /// Builds a page from exactly [`PAGE_SIZE`] bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not exactly one page long. Callers receive
    /// page-sized buffers from the wire codec, which validates lengths.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        assert_eq!(bytes.len(), PAGE_SIZE, "page data must be exactly one page");
        let mut arr = Box::new([0u8; PAGE_SIZE]);
        arr.copy_from_slice(bytes);
        Self(arr)
    }

    /// Read-only view of the raw bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0[..]
    }

    /// Mutable view of the raw bytes.
    pub fn as_bytes_mut(&mut self) -> &mut [u8] {
        &mut self.0[..]
    }

    /// Loads a little-endian `u32` at the given byte offset.
    ///
    /// # Panics
    ///
    /// Panics if the word would cross the page end.
    pub fn load_u32(&self, offset: usize) -> u32 {
        let bytes: [u8; 4] = self.0[offset..offset + 4].try_into().expect("in-page word");
        u32::from_le_bytes(bytes)
    }

    /// Stores a little-endian `u32` at the given byte offset.
    ///
    /// # Panics
    ///
    /// Panics if the word would cross the page end.
    pub fn store_u32(&mut self, offset: usize, value: u32) {
        self.0[offset..offset + 4].copy_from_slice(&value.to_le_bytes());
    }
}

impl Default for PageData {
    fn default() -> Self {
        Self::zeroed()
    }
}

impl core::fmt::Debug for PageData {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let nonzero = self.0.iter().filter(|&&b| b != 0).count();
        write!(f, "PageData({nonzero} nonzero bytes)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_page_is_all_zero() {
        let p = PageData::zeroed();
        assert!(p.as_bytes().iter().all(|&b| b == 0));
        assert_eq!(p.as_bytes().len(), PAGE_SIZE);
    }

    #[test]
    fn word_load_store_round_trips() {
        let mut p = PageData::zeroed();
        p.store_u32(0, 0xDEADBEEF);
        p.store_u32(PAGE_SIZE - 4, 42);
        assert_eq!(p.load_u32(0), 0xDEADBEEF);
        assert_eq!(p.load_u32(PAGE_SIZE - 4), 42);
        // Little-endian layout on the wire.
        assert_eq!(p.as_bytes()[0], 0xEF);
    }

    #[test]
    #[should_panic(expected = "page data must be exactly one page")]
    fn from_bytes_rejects_wrong_length() {
        let _ = PageData::from_bytes(&[0u8; 100]);
    }

    #[test]
    fn from_bytes_copies_contents() {
        let mut src = vec![0u8; PAGE_SIZE];
        src[7] = 9;
        let p = PageData::from_bytes(&src);
        assert_eq!(p.as_bytes()[7], 9);
    }
}
