//! The System V segment namespace: `shmget`-style creation and lookup.
//!
//! §2.2: "A process creates a shared segment by defining a segment's
//! size, name, and access protection. Segment access protection works
//! similarly to UNIX file access protection, but is limited to read and
//! write permissions. … When a process is finished with the segment it
//! may be detached. The last detach of a segment destroys it."
//!
//! In Mirage the namespace lives at the library site for each segment;
//! this type is that registry. The simulator instantiates one per library
//! site; the host runtime shares one across site threads.

use std::collections::HashMap;

use mirage_types::{
    Access,
    MirageError,
    Pid,
    Result,
    SegKey,
    SegmentId,
    SiteId,
    MAX_SEGMENT_SIZE,
    PAGE_SIZE,
};

/// Flags to `get` (the `shmget` analogues of `IPC_CREAT`/`IPC_EXCL`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShmFlags {
    /// Create the segment if it does not exist.
    pub create: bool,
    /// With `create`: fail if it already exists.
    pub exclusive: bool,
    /// Owner read permission (like the `0400` mode bit).
    pub owner_read: bool,
    /// Owner write permission (like the `0200` mode bit).
    pub owner_write: bool,
    /// Other-process read permission (like `0004`).
    pub other_read: bool,
    /// Other-process write permission (like `0002`).
    pub other_write: bool,
}

impl ShmFlags {
    /// `IPC_CREAT | 0666`: create with read-write for everyone.
    pub fn create_rw() -> Self {
        Self {
            create: true,
            exclusive: false,
            owner_read: true,
            owner_write: true,
            other_read: true,
            other_write: true,
        }
    }

    /// Lookup-only with read-write intent.
    pub fn lookup() -> Self {
        Self::default()
    }
}

/// Flags to `attach` (the `shmat` analogues).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AttachFlags {
    /// Attach read-only (`SHM_RDONLY`).
    pub read_only: bool,
    /// Exact attach address, or `None` for first-fit.
    pub at: Option<usize>,
}

/// Registry record for one segment.
#[derive(Clone, Debug)]
pub struct SegmentInfo {
    /// The segment id (embeds the library site).
    pub id: SegmentId,
    /// The System V key it was created under.
    pub key: SegKey,
    /// Size in bytes, rounded up to a whole number of pages.
    pub size: usize,
    /// Creating process (the "owner" for permission checks).
    pub owner: Pid,
    /// Permission bits.
    pub flags: ShmFlags,
    /// Processes currently attached.
    pub attached: Vec<Pid>,
    /// True once at least one attach has happened; the last detach of an
    /// ever-attached segment destroys it.
    pub ever_attached: bool,
}

impl SegmentInfo {
    /// Number of pages in the segment.
    pub fn pages(&self) -> usize {
        self.size / PAGE_SIZE
    }

    /// Checks whether `pid` may attach with the given access.
    fn permits(&self, pid: Pid, access: Access) -> bool {
        let owner = pid == self.owner;
        match (owner, access) {
            (true, Access::Read) => self.flags.owner_read,
            (true, Access::Write) => self.flags.owner_write,
            (false, Access::Read) => self.flags.other_read,
            (false, Access::Write) => self.flags.other_write,
        }
    }
}

/// The key→segment registry kept at a library site.
#[derive(Debug)]
pub struct Namespace {
    site: SiteId,
    next_serial: u32,
    by_key: HashMap<SegKey, SegmentId>,
    segments: HashMap<SegmentId, SegmentInfo>,
}

impl Namespace {
    /// A registry for segments whose library site is `site`.
    pub fn new(site: SiteId) -> Self {
        Self { site, next_serial: 1, by_key: HashMap::new(), segments: HashMap::new() }
    }

    /// `shmget`: find or create a segment by key.
    ///
    /// # Errors
    ///
    /// * [`MirageError::InvalidSize`] — zero size or beyond the 128 KiB
    ///   configuration limit (creation only);
    /// * [`MirageError::KeyExists`] — `create && exclusive` on an
    ///   existing key;
    /// * [`MirageError::NoSuchKey`] — lookup of an absent key without
    ///   `create`.
    pub fn get(
        &mut self,
        key: SegKey,
        size: usize,
        flags: ShmFlags,
        caller: Pid,
    ) -> Result<SegmentId> {
        if let Some(&id) = self.by_key.get(&key) {
            if flags.create && flags.exclusive {
                return Err(MirageError::KeyExists(key));
            }
            return Ok(id);
        }
        if !flags.create {
            return Err(MirageError::NoSuchKey(key));
        }
        if size == 0 || size > MAX_SEGMENT_SIZE {
            return Err(MirageError::InvalidSize { requested: size });
        }
        let rounded = size.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        let id = SegmentId::new(self.site, self.next_serial);
        self.next_serial += 1;
        self.by_key.insert(key, id);
        self.segments.insert(
            id,
            SegmentInfo {
                id,
                key,
                size: rounded,
                owner: caller,
                flags,
                attached: Vec::new(),
                ever_attached: false,
            },
        );
        Ok(id)
    }

    /// Records an attach after a permission check.
    ///
    /// # Errors
    ///
    /// [`MirageError::NoSuchSegment`] or [`MirageError::PermissionDenied`].
    pub fn attach(&mut self, id: SegmentId, pid: Pid, access: Access) -> Result<&SegmentInfo> {
        let info = self.segments.get_mut(&id).ok_or(MirageError::NoSuchSegment(id))?;
        if !info.permits(pid, access) {
            return Err(MirageError::PermissionDenied(id));
        }
        if !info.attached.contains(&pid) {
            info.attached.push(pid);
        }
        info.ever_attached = true;
        Ok(info)
    }

    /// Records a detach. Returns `true` if this was the last detach and
    /// the segment was destroyed ("The last detach of a segment destroys
    /// it", §2.2).
    ///
    /// # Errors
    ///
    /// [`MirageError::NoSuchSegment`] if the segment does not exist or
    /// the process was not attached.
    pub fn detach(&mut self, id: SegmentId, pid: Pid) -> Result<bool> {
        let info = self.segments.get_mut(&id).ok_or(MirageError::NoSuchSegment(id))?;
        let pos = info
            .attached
            .iter()
            .position(|&p| p == pid)
            .ok_or(MirageError::NoSuchSegment(id))?;
        info.attached.remove(pos);
        if info.attached.is_empty() {
            let key = info.key;
            self.segments.remove(&id);
            self.by_key.remove(&key);
            return Ok(true);
        }
        Ok(false)
    }

    /// Looks up a segment's record.
    pub fn info(&self, id: SegmentId) -> Option<&SegmentInfo> {
        self.segments.get(&id)
    }

    /// Looks up a segment id by key without creating.
    pub fn lookup(&self, key: SegKey) -> Option<SegmentId> {
        self.by_key.get(&key).copied()
    }

    /// Number of live segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// True if no segments exist.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns() -> Namespace {
        Namespace::new(SiteId(0))
    }

    fn pid(n: u32) -> Pid {
        Pid::new(SiteId(0), n)
    }

    #[test]
    fn create_and_lookup_by_key() {
        let mut n = ns();
        let id = n.get(SegKey(7), 1000, ShmFlags::create_rw(), pid(1)).unwrap();
        assert_eq!(n.lookup(SegKey(7)), Some(id));
        // Size rounds up to whole pages.
        assert_eq!(n.info(id).unwrap().size, 1024);
        assert_eq!(n.info(id).unwrap().pages(), 2);
        // A second get with the same key returns the same segment.
        let again = n.get(SegKey(7), 0, ShmFlags::lookup(), pid(2)).unwrap();
        assert_eq!(again, id);
    }

    #[test]
    fn exclusive_create_fails_on_existing_key() {
        let mut n = ns();
        n.get(SegKey(7), 512, ShmFlags::create_rw(), pid(1)).unwrap();
        let mut excl = ShmFlags::create_rw();
        excl.exclusive = true;
        assert_eq!(n.get(SegKey(7), 512, excl, pid(1)), Err(MirageError::KeyExists(SegKey(7))));
    }

    #[test]
    fn lookup_of_missing_key_fails() {
        let mut n = ns();
        assert_eq!(
            n.get(SegKey(9), 512, ShmFlags::lookup(), pid(1)),
            Err(MirageError::NoSuchKey(SegKey(9)))
        );
    }

    #[test]
    fn size_limits_enforced_on_create() {
        let mut n = ns();
        assert!(matches!(
            n.get(SegKey(1), 0, ShmFlags::create_rw(), pid(1)),
            Err(MirageError::InvalidSize { .. })
        ));
        assert!(matches!(
            n.get(SegKey(2), MAX_SEGMENT_SIZE + 1, ShmFlags::create_rw(), pid(1)),
            Err(MirageError::InvalidSize { .. })
        ));
        assert!(n.get(SegKey(3), MAX_SEGMENT_SIZE, ShmFlags::create_rw(), pid(1)).is_ok());
    }

    #[test]
    fn last_detach_destroys_segment() {
        let mut n = ns();
        let id = n.get(SegKey(7), 512, ShmFlags::create_rw(), pid(1)).unwrap();
        n.attach(id, pid(1), Access::Write).unwrap();
        n.attach(id, pid(2), Access::Read).unwrap();
        assert!(!n.detach(id, pid(1)).unwrap());
        assert!(n.detach(id, pid(2)).unwrap(), "last detach destroys");
        assert!(n.info(id).is_none());
        assert_eq!(n.lookup(SegKey(7)), None);
    }

    #[test]
    fn permissions_distinguish_owner_and_other() {
        let mut n = ns();
        // Owner read-write, others read-only (mode 0644-ish).
        let flags = ShmFlags {
            create: true,
            exclusive: false,
            owner_read: true,
            owner_write: true,
            other_read: true,
            other_write: false,
        };
        let id = n.get(SegKey(7), 512, flags, pid(1)).unwrap();
        assert!(n.attach(id, pid(1), Access::Write).is_ok());
        assert!(n.attach(id, pid(2), Access::Read).is_ok());
        assert_eq!(
            n.attach(id, pid(3), Access::Write).err(),
            Some(MirageError::PermissionDenied(id))
        );
    }

    #[test]
    fn detach_by_non_attached_process_fails() {
        let mut n = ns();
        let id = n.get(SegKey(7), 512, ShmFlags::create_rw(), pid(1)).unwrap();
        n.attach(id, pid(1), Access::Read).unwrap();
        assert!(n.detach(id, pid(9)).is_err());
    }

    #[test]
    fn segment_ids_are_unique_per_library() {
        let mut n = ns();
        let a = n.get(SegKey(1), 512, ShmFlags::create_rw(), pid(1)).unwrap();
        let b = n.get(SegKey(2), 512, ShmFlags::create_rw(), pid(1)).unwrap();
        assert_ne!(a, b);
        assert_eq!(a.library, SiteId(0));
        assert_eq!(b.library, SiteId(0));
    }
}
