//! The auxiliary parallel page table (paper Table 2).
//!
//! "We use an unused bit in the standard page table entry which indicates
//! that an auxiliary parallel page table should be consulted when a page
//! fault occurs. … There is one shared copy of the complete table for
//! each segment at each site. There are N entries in this table that
//! correspond to the pages of the segment." (§6.2)

use mirage_types::{
    Delta,
    PageNum,
    SimTime,
    SiteId,
    SiteSet,
};

/// One auxiliary page table entry.
///
/// Field-for-field from Table 2:
///
/// | Contents      | Comment                                        |
/// |---------------|------------------------------------------------|
/// | reader mask   | list of sites using this page                  |
/// | writer        | current writer site                            |
/// | window ticks  | number of ticks allocated for this page        |
/// | install time  | installation time for this page at this site   |
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuxPte {
    /// Sites currently holding read copies of this page.
    pub readers: SiteSet,
    /// The site holding the sole write copy, if any.
    pub writer: Option<SiteId>,
    /// The time window Δ allocated for this page, in scheduler ticks.
    ///
    /// §8.0: "The auxpte data structure contains the per-page Δs values
    /// and the implementation could be easily modified to use different
    /// values" — per-page Δ is supported here; the protocol configuration
    /// decides whether to use uniform per-segment values.
    pub window: Delta,
    /// When the page was installed at this site; the window expires at
    /// `install_time + window`.
    pub install_time: SimTime,
}

impl AuxPte {
    /// An entry for a page not yet distributed anywhere.
    pub fn empty(window: Delta) -> Self {
        Self { readers: SiteSet::empty(), writer: None, window, install_time: SimTime::ZERO }
    }

    /// The time at which this page's window expires at this site.
    pub fn window_expiry(&self) -> SimTime {
        self.install_time + self.window.duration()
    }

    /// Time remaining in the window at `now` (zero if already expired).
    pub fn window_remaining(&self, now: SimTime) -> mirage_types::SimDuration {
        self.window_expiry().since(now)
    }

    /// True if the window has expired at `now`.
    pub fn window_expired(&self, now: SimTime) -> bool {
        now >= self.window_expiry()
    }
}

/// The per-segment auxiliary table: one [`AuxPte`] per page.
#[derive(Clone, Debug)]
pub struct AuxTable {
    entries: Vec<AuxPte>,
}

impl AuxTable {
    /// Builds a table for a segment of `pages` pages, all windows set to
    /// the segment's uniform Δ.
    pub fn new(pages: usize, window: Delta) -> Self {
        Self { entries: vec![AuxPte::empty(window); pages] }
    }

    /// Number of pages covered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the segment has no pages (never the case in practice).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Shared access to a page's entry.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range for the segment.
    pub fn get(&self, page: PageNum) -> &AuxPte {
        &self.entries[page.index()]
    }

    /// Exclusive access to a page's entry.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range for the segment.
    pub fn get_mut(&mut self, page: PageNum) -> &mut AuxPte {
        &mut self.entries[page.index()]
    }

    /// Iterates `(page, entry)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (PageNum, &AuxPte)> {
        self.entries.iter().enumerate().map(|(i, e)| (PageNum(i as u32), e))
    }

    /// Sets a per-page window, the §8.0 hot-spot tuning hook.
    pub fn set_window(&mut self, page: PageNum, window: Delta) {
        self.entries[page.index()].window = window;
    }
}

#[cfg(test)]
mod tests {
    use mirage_types::{
        SimDuration,
        TICK,
    };

    use super::*;

    #[test]
    fn window_expiry_accounts_install_time() {
        let mut e = AuxPte::empty(Delta(2));
        e.install_time = SimTime::from_millis(100);
        let expiry = e.window_expiry();
        assert_eq!(expiry, SimTime::from_millis(100) + TICK.scale(2));
        assert!(!e.window_expired(SimTime::from_millis(100)));
        assert!(e.window_expired(expiry));
    }

    #[test]
    fn window_remaining_saturates_at_zero() {
        let e = AuxPte::empty(Delta(1));
        assert_eq!(e.window_remaining(SimTime::from_millis(500)), SimDuration::ZERO);
    }

    #[test]
    fn zero_delta_expires_immediately() {
        let mut e = AuxPte::empty(Delta::ZERO);
        e.install_time = SimTime::from_millis(5);
        assert!(e.window_expired(SimTime::from_millis(5)));
    }

    #[test]
    fn table_supports_per_page_windows() {
        let mut t = AuxTable::new(4, Delta(3));
        assert_eq!(t.len(), 4);
        t.set_window(PageNum(2), Delta(10));
        assert_eq!(t.get(PageNum(2)).window, Delta(10));
        assert_eq!(t.get(PageNum(0)).window, Delta(3));
    }

    #[test]
    fn iter_yields_all_pages_in_order() {
        let t = AuxTable::new(3, Delta::ZERO);
        let pages: Vec<_> = t.iter().map(|(p, _)| p.0).collect();
        assert_eq!(pages, vec![0, 1, 2]);
    }
}
