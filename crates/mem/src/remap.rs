//! The lazy PTE consistency method (§6.2).
//!
//! Mirage rejects *active* methods (immediately updating every process's
//! PTEs when the master changes) as "expensive and difficult to implement
//! in a UNIX environment" and instead remaps lazily: "Whenever a process
//! is scheduled, we determine if it is using shared memory. If it is,
//! before the context of the new process is resumed, the appropriate
//! master PTE entry is copied into the new process' map."

use mirage_types::SimDuration;

use crate::pte::{
    MasterTable,
    ProcessTable,
};

/// Remaps every shared segment of a process from the masters, as done at
/// context-switch time. Returns `(pages_copied, simulated_cost)` given a
/// per-page cost (the measured 106–125 µs).
///
/// Processes that do not use shared memory pay no penalty: the iterator
/// is empty and the cost is zero, matching the paper's observation about
/// Xenix ("processes that do not use shared memory pay no penalty").
pub fn remap_process<'a>(
    process: &mut ProcessTable,
    masters: impl Iterator<Item = &'a MasterTable>,
    per_page: SimDuration,
) -> (usize, SimDuration) {
    let mut pages = 0usize;
    for master in masters {
        pages += process.remap_from(master);
    }
    (pages, per_page.scale(pages as u64))
}

#[cfg(test)]
mod tests {
    use mirage_types::{
        PageNum,
        PageProt,
        SegmentId,
        SiteId,
    };

    use super::*;

    #[test]
    fn remap_cost_scales_with_mapped_pages() {
        let per_page = SimDuration::from_micros(110);
        let a = MasterTable::new(SegmentId::new(SiteId(0), 1), 4);
        let b = MasterTable::new(SegmentId::new(SiteId(0), 2), 6);
        let mut p = ProcessTable::new();
        p.attach(&a);
        p.attach(&b);
        let (pages, cost) = remap_process(&mut p, [&a, &b].into_iter(), per_page);
        assert_eq!(pages, 10);
        assert_eq!(cost, SimDuration::from_micros(1100));
    }

    #[test]
    fn non_shm_process_pays_nothing() {
        let mut p = ProcessTable::new();
        let (pages, cost) =
            remap_process(&mut p, core::iter::empty(), SimDuration::from_micros(110));
        assert_eq!(pages, 0);
        assert_eq!(cost, SimDuration::ZERO);
    }

    #[test]
    fn remap_propagates_master_changes() {
        let seg = SegmentId::new(SiteId(0), 1);
        let mut m = MasterTable::new(seg, 2);
        let mut p = ProcessTable::new();
        p.attach(&m);
        m.set_prot(PageNum(1), PageProt::Read);
        remap_process(&mut p, core::iter::once(&m), SimDuration::ZERO);
        assert_eq!(p.prot(seg, PageNum(1)), Some(PageProt::Read));
    }

    #[test]
    fn largest_segment_remap_matches_paper_budget() {
        // A 128 KiB segment is 256 pages; at 110 µs/page the remap is
        // ≈28 ms — the worst-case context-switch overhead the paper's
        // configuration admits.
        let seg = SegmentId::new(SiteId(0), 1);
        let m = MasterTable::new(seg, mirage_types::MAX_SEGMENT_PAGES);
        let mut p = ProcessTable::new();
        p.attach(&m);
        let (pages, cost) =
            remap_process(&mut p, core::iter::once(&m), SimDuration::from_micros(110));
        assert_eq!(pages, 256);
        assert!((cost.as_millis_f64() - 28.16).abs() < 0.01);
    }
}
