//! Master segment page tables and per-process page tables.
//!
//! §6.2: "when a process attaches a segment into its address space, a copy
//! of a master shared segment's page table entries (PTEs) is conjoined
//! with the current process's page table entries." The *master* table is
//! the authoritative per-site record; per-process tables are caches kept
//! consistent by the lazy remapping of [`crate::remap`].

use std::collections::HashMap;

use mirage_types::{
    PageNum,
    PageProt,
    SegmentId,
};

/// One page table entry.
///
/// `aux` models the paper's trick: "We use an unused bit in the standard
/// page table entry which indicates that an auxiliary parallel page table
/// should be consulted when a page fault occurs."
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Pte {
    /// Hardware protection. `PageProt::None` means the valid bit is clear
    /// and any access faults.
    pub prot: PageProt,
    /// The unused-bit flag: this PTE belongs to a shared segment, so a
    /// fault on it must consult the auxiliary table rather than the
    /// swap/demand-zero paths.
    pub aux: bool,
}

impl Pte {
    /// A shared-memory PTE with the given protection.
    pub fn shared(prot: PageProt) -> Self {
        Self { prot, aux: true }
    }
}

/// The master (per-site, per-segment) PTE table.
///
/// "When an incoming network message invalidates a page, the master
/// version of the PTE table is updated by the network server process."
#[derive(Clone, Debug)]
pub struct MasterTable {
    segment: SegmentId,
    entries: Vec<Pte>,
    /// Generation counter bumped on every mutation; lets tests and the
    /// remap engine detect staleness cheaply.
    generation: u64,
}

impl MasterTable {
    /// A master table for a segment of `pages` pages, all invalid.
    pub fn new(segment: SegmentId, pages: usize) -> Self {
        Self { segment, entries: vec![Pte::shared(PageProt::None); pages], generation: 0 }
    }

    /// The segment this table describes.
    pub fn segment(&self) -> SegmentId {
        self.segment
    }

    /// Number of pages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the table covers no pages.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Reads a page's entry.
    pub fn get(&self, page: PageNum) -> Pte {
        self.entries[page.index()]
    }

    /// Sets a page's protection, bumping the generation.
    pub fn set_prot(&mut self, page: PageNum, prot: PageProt) {
        self.entries[page.index()].prot = prot;
        self.generation += 1;
    }

    /// Current generation (mutation count).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Slice view for bulk copies during remap.
    pub fn entries(&self) -> &[Pte] {
        &self.entries
    }
}

/// A process's page table: its cached copies of the master entries for
/// every segment it has attached.
#[derive(Clone, Debug, Default)]
pub struct ProcessTable {
    /// Per attached segment: cached PTEs and the master generation they
    /// were copied at.
    cached: HashMap<SegmentId, (Vec<Pte>, u64)>,
}

impl ProcessTable {
    /// An empty table for a process with no attachments.
    pub fn new() -> Self {
        Self::default()
    }

    /// Conjoin a segment's master entries into this process's table
    /// (attach time).
    pub fn attach(&mut self, master: &MasterTable) {
        self.cached.insert(master.segment(), (master.entries().to_vec(), master.generation()));
    }

    /// Remove a segment's entries (detach time).
    pub fn detach(&mut self, segment: SegmentId) {
        self.cached.remove(&segment);
    }

    /// True if the process has the segment attached.
    pub fn has(&self, segment: SegmentId) -> bool {
        self.cached.contains_key(&segment)
    }

    /// Segments attached (for remap iteration).
    pub fn segments(&self) -> impl Iterator<Item = SegmentId> + '_ {
        self.cached.keys().copied()
    }

    /// The process's *cached* view of a page's protection — what the
    /// hardware would consult, possibly stale until the next remap.
    pub fn prot(&self, segment: SegmentId, page: PageNum) -> Option<PageProt> {
        self.cached.get(&segment).map(|(v, _)| v[page.index()].prot)
    }

    /// The generation at which this process last copied the segment's
    /// master entries.
    pub fn cached_generation(&self, segment: SegmentId) -> Option<u64> {
        self.cached.get(&segment).map(|&(_, g)| g)
    }

    /// Overwrites the cached entries from the master (the per-segment
    /// step of lazy remapping). Returns the number of PTEs copied, which
    /// the simulator converts to time at the measured per-page cost.
    pub fn remap_from(&mut self, master: &MasterTable) -> usize {
        if let Some((v, gen)) = self.cached.get_mut(&master.segment()) {
            // The prototype remaps *all* the pages with a simple for-loop
            // "rather than detecting which specific ones have changed"
            // (§6.2), so the cost is the full segment length even when
            // nothing changed.
            v.copy_from_slice(master.entries());
            *gen = master.generation();
            master.len()
        } else {
            0
        }
    }

    /// Total number of shared pages mapped by this process (the remap
    /// cost driver).
    pub fn mapped_pages(&self) -> usize {
        self.cached.values().map(|(v, _)| v.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use mirage_types::SiteId;

    use super::*;

    fn sid() -> SegmentId {
        SegmentId::new(SiteId(0), 1)
    }

    #[test]
    fn master_updates_bump_generation() {
        let mut m = MasterTable::new(sid(), 2);
        assert_eq!(m.generation(), 0);
        m.set_prot(PageNum(0), PageProt::Read);
        m.set_prot(PageNum(1), PageProt::ReadWrite);
        assert_eq!(m.generation(), 2);
        assert_eq!(m.get(PageNum(1)).prot, PageProt::ReadWrite);
        assert!(m.get(PageNum(1)).aux, "shared PTEs carry the aux bit");
    }

    #[test]
    fn attach_copies_current_master_state() {
        let mut m = MasterTable::new(sid(), 2);
        m.set_prot(PageNum(0), PageProt::Read);
        let mut p = ProcessTable::new();
        p.attach(&m);
        assert_eq!(p.prot(sid(), PageNum(0)), Some(PageProt::Read));
        assert_eq!(p.cached_generation(sid()), Some(1));
    }

    #[test]
    fn process_view_is_stale_until_remap() {
        let mut m = MasterTable::new(sid(), 1);
        let mut p = ProcessTable::new();
        p.attach(&m);
        m.set_prot(PageNum(0), PageProt::ReadWrite);
        // Stale: the process still sees the page as invalid.
        assert_eq!(p.prot(sid(), PageNum(0)), Some(PageProt::None));
        let copied = p.remap_from(&m);
        assert_eq!(copied, 1);
        assert_eq!(p.prot(sid(), PageNum(0)), Some(PageProt::ReadWrite));
    }

    #[test]
    fn remap_copies_whole_segment_even_if_unchanged() {
        let m = MasterTable::new(sid(), 8);
        let mut p = ProcessTable::new();
        p.attach(&m);
        assert_eq!(p.remap_from(&m), 8, "prototype remaps all pages");
    }

    #[test]
    fn detach_removes_mapping() {
        let m = MasterTable::new(sid(), 2);
        let mut p = ProcessTable::new();
        p.attach(&m);
        assert!(p.has(sid()));
        assert_eq!(p.mapped_pages(), 2);
        p.detach(sid());
        assert!(!p.has(sid()));
        assert_eq!(p.remap_from(&m), 0, "detached segments are not remapped");
    }
}
