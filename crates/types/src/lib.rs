//! Shared vocabulary types for the Mirage distributed shared memory system.
//!
//! Mirage (Fleisch & Popek, 1989) is a page-based coherent DSM built into
//! the Locus distributed operating system. Every crate in this workspace —
//! the sans-IO protocol engine, the discrete-event simulator, the memory
//! substrate, and the real-memory host runtime — speaks in terms of the
//! identifiers and units defined here.
//!
//! The types are deliberately small and `Copy` where possible: they are the
//! currency of a protocol state machine that is exercised millions of times
//! in property tests and benchmarks.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod access;
pub mod error;
pub mod fasthash;
pub mod ids;
pub mod pagediff;
pub mod rng;
pub mod time;

pub use access::{
    Access,
    PageProt,
    ReaderSet,
    SiteSet,
};
pub use error::{
    MirageError,
    Result,
};
pub use fasthash::{
    FastBuild,
    FastHasher,
    FastMap,
};
pub use ids::{
    PageNum,
    Pid,
    SegKey,
    SegmentId,
    SiteId,
};
pub use pagediff::{
    fnv64,
    DiffSpan,
    PageDiff,
};
pub use rng::Prng;
pub use time::{
    Delta,
    SimDuration,
    SimTime,
    Ticks,
    TICK,
};

/// The hardware page size used throughout Mirage, in bytes.
///
/// The paper: "Pages are 512 bytes in the current implementation of
/// Mirage" (§6.2). Pages are the unit of distribution "because of their
/// fixed size and commonality with the underlying hardware" (§6.0).
pub const PAGE_SIZE: usize = 512;

/// The largest segment the paper's VAX memory configurations allowed.
///
/// §6.2: "the largest segment allowed in our intersection of memory
/// configurations for the various VAXs is 128K".
pub const MAX_SEGMENT_SIZE: usize = 128 * 1024;

/// Maximum number of pages a single segment may contain.
pub const MAX_SEGMENT_PAGES: usize = MAX_SEGMENT_SIZE / PAGE_SIZE;
