//! A fixed-key multiply hasher for the protocol engine's internal maps.
//!
//! The engine resolves a segment slot (and a timer token) through a
//! `HashMap` on every fault, delivery, and timer firing. The std
//! `RandomState`/SipHash pair is built to survive adversarial keys from
//! the network; these maps only ever see this process's own small ids
//! (`SegmentId`, timer tokens), so a single multiply-and-rotate mix is
//! enough to spread them and takes a few cycles instead of a SipHash
//! round per lookup. The key is fixed rather than per-process random,
//! which also keeps map behavior identical across runs — the repro
//! binaries' determinism does not get to depend on `RandomState`.
//!
//! Not for untrusted input: an adversary who controls keys can collide
//! this hash at will. Protocol-visible collections keyed by anything a
//! remote site chooses must keep the std hasher.

use core::hash::{
    BuildHasherDefault,
    Hasher,
};

/// Multiplier from fxhash (a cousin of the FNV/Firefox mix): odd, with
/// high bit diffusion under wrapping multiply.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The hasher state: one word folded with rotate-xor-multiply.
#[derive(Default)]
pub struct FastHasher(u64);

impl FastHasher {
    #[inline]
    fn mix(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.mix(u64::from_le_bytes(c.try_into().expect("exact chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            // Length in the top byte so "ab" and "ab\0" differ.
            buf[7] = rem.len() as u8;
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.mix(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.mix(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.mix(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.mix(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.mix(i as u64);
    }
}

/// `BuildHasher` for [`FastHasher`] (stateless, so `Default` is enough).
pub type FastBuild = BuildHasherDefault<FastHasher>;

/// A `HashMap` on the fixed-key multiply hash, for process-internal keys.
pub type FastMap<K, V> = std::collections::HashMap<K, V, FastBuild>;

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(f: impl FnOnce(&mut FastHasher)) -> u64 {
        let mut h = FastHasher::default();
        f(&mut h);
        h.finish()
    }

    #[test]
    fn distinguishes_small_ints() {
        let hashes: Vec<u64> = (0u64..1000).map(|i| hash_of(|h| h.write_u64(i))).collect();
        let mut sorted = hashes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), hashes.len(), "collisions among small ints");
    }

    #[test]
    fn byte_stream_tail_is_length_tagged() {
        assert_ne!(hash_of(|h| h.write(b"ab")), hash_of(|h| h.write(b"ab\0")));
        assert_ne!(hash_of(|h| h.write(b"")), hash_of(|h| h.write(b"\0")));
    }

    #[test]
    fn deterministic_across_builders() {
        use std::hash::BuildHasher;
        let a = FastBuild::default().hash_one(0xdead_beefu64);
        let b = FastBuild::default().hash_one(0xdead_beefu64);
        assert_eq!(a, b);
    }

    #[test]
    fn map_round_trip() {
        let mut m: FastMap<u64, u32> = FastMap::default();
        for i in 0..100 {
            m.insert(i, i as u32 * 2);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&40), Some(&80));
    }
}
