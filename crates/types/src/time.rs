//! Simulated time, clock ticks, and the Mirage time window Δ.
//!
//! The Δ ("window ticks" in the `auxpte`, Table 2) is the amount of time a
//! clock site is guaranteed uninterrupted possession of a page. It is the
//! paper's single tuning parameter, evaluated in Figures 7 and 8.

use core::fmt;
use core::ops::{
    Add,
    AddAssign,
    Sub,
};

/// A point in simulated time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

/// One scheduler clock tick.
///
/// Locus on the VAX ran a 60 Hz clock; we use 16.67 ms. The scheduling
/// quantum is 6 ticks (≈100 ms) — the Δ value at which the two curves of
/// Figure 7 intersect ("the intersection of the two curves (Δ=6) is the
/// system's scheduling quantum", §7.3).
pub const TICK: SimDuration = SimDuration(16_666_667);

/// A count of scheduler ticks.
pub type Ticks = u32;

/// The Mirage time window Δ, measured in scheduler ticks.
///
/// Table 2 stores Δ per page as "window ticks"; §8.0 notes per-page Δs are
/// supported by the data structure even though the prototype used uniform
/// per-segment values.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Delta(pub Ticks);

impl Delta {
    /// Δ = 0: pages may be invalidated as soon as the library asks.
    pub const ZERO: Delta = Delta(0);

    /// Converts the window into a simulated duration.
    #[inline]
    pub fn duration(self) -> SimDuration {
        SimDuration(TICK.0 * u64::from(self.0))
    }
}

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds a time from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Self(ms * 1_000_000)
    }

    /// Builds a time from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Self(us * 1_000)
    }

    /// Saturating difference `self - earlier`.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The scheduler clock tick containing this instant (floor).
    #[inline]
    pub const fn tick_number(self) -> u64 {
        self.0 / TICK.0
    }

    /// The first clock-tick boundary strictly after this instant.
    #[inline]
    pub const fn next_tick_boundary(self) -> SimTime {
        SimTime((self.0 / TICK.0 + 1) * TICK.0)
    }

    /// Time as fractional seconds (for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Self(ms * 1_000_000)
    }

    /// Builds a duration from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Self(us * 1_000)
    }

    /// Builds a duration from fractional milliseconds.
    #[inline]
    pub fn from_millis_f64(ms: f64) -> Self {
        Self((ms * 1e6).round() as u64)
    }

    /// Duration as fractional milliseconds (for reporting).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration as fractional seconds (for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Scales the duration by an integer factor.
    #[inline]
    pub fn scale(self, factor: u64) -> SimDuration {
        SimDuration(self.0 * factor)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}ms", self.0 as f64 / 1e6)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.0 as f64 / 1e6)
    }
}

impl fmt::Debug for Delta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Δ={}", self.0)
    }
}

impl fmt::Display for Delta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_is_sixty_hertz() {
        // 60 ticks should be within one microsecond of a second.
        let one_second = TICK.scale(60);
        assert!((one_second.0 as i64 - 1_000_000_000).abs() < 1_000);
    }

    #[test]
    fn delta_duration_scales_with_ticks() {
        assert_eq!(Delta::ZERO.duration(), SimDuration::ZERO);
        assert_eq!(Delta(2).duration().0, TICK.0 * 2);
        // Δ=2 ≈ 33 ms, the paper's yield-sleep granularity.
        let ms = Delta(2).duration().as_millis_f64();
        assert!((ms - 33.3).abs() < 0.2, "Δ=2 should be ≈33 ms, got {ms}");
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t, SimTime::from_millis(15));
        assert_eq!(t.since(SimTime::from_millis(5)), SimDuration::from_millis(10));
        // `since` saturates rather than wrapping.
        assert_eq!(SimTime::ZERO.since(t), SimDuration::ZERO);
    }

    #[test]
    fn tick_accessors() {
        assert_eq!(SimTime::ZERO.tick_number(), 0);
        assert_eq!(SimTime(TICK.0 - 1).tick_number(), 0);
        assert_eq!(SimTime(TICK.0).tick_number(), 1);
        // The boundary after an instant is strictly later, even on a tick.
        assert_eq!(SimTime::ZERO.next_tick_boundary(), SimTime(TICK.0));
        assert_eq!(SimTime(TICK.0).next_tick_boundary(), SimTime(TICK.0 * 2));
        assert_eq!(SimTime(TICK.0 + 1).next_tick_boundary(), SimTime(TICK.0 * 2));
    }

    #[test]
    fn duration_reporting_units() {
        assert_eq!(SimDuration::from_millis(25).as_millis_f64(), 25.0);
        assert_eq!(SimDuration::from_micros(110).0, 110_000);
        assert_eq!(SimDuration::from_millis_f64(12.9).0, 12_900_000);
    }
}
