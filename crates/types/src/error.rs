//! Error types shared across the Mirage workspace.

use core::fmt;

use crate::ids::{
    SegKey,
    SegmentId,
    SiteId,
};

/// Workspace-wide result alias.
pub type Result<T> = core::result::Result<T, MirageError>;

/// Errors surfaced by the Mirage public interfaces.
///
/// These mirror the System V IPC failure modes (`EINVAL`, `EEXIST`,
/// `ENOENT`, `EACCES`, `ENOMEM`) plus distributed-operation failures the
/// single-site interface never sees.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MirageError {
    /// The requested segment size is zero, not page-aligned policy-wise,
    /// or exceeds [`crate::MAX_SEGMENT_SIZE`].
    InvalidSize {
        /// The size requested, in bytes.
        requested: usize,
    },
    /// `shmget(IPC_CREAT | IPC_EXCL)` on a key that already exists.
    KeyExists(SegKey),
    /// No segment with this key exists and creation was not requested.
    NoSuchKey(SegKey),
    /// No segment with this id exists (it may have been destroyed by a
    /// last detach).
    NoSuchSegment(SegmentId),
    /// The caller lacks the required permission on the segment.
    PermissionDenied(SegmentId),
    /// The requested attach address is unavailable or ill-formed.
    BadAddress {
        /// The requested virtual address.
        addr: usize,
    },
    /// The process has no attachment covering the faulting address.
    NotAttached {
        /// The faulting virtual address.
        addr: usize,
    },
    /// The process already has this segment attached.
    AlreadyAttached(SegmentId),
    /// A site referenced by the operation is unknown to the topology.
    UnknownSite(SiteId),
    /// The network layer could not deliver a message (circuit down).
    CircuitDown {
        /// Source site.
        from: SiteId,
        /// Destination site.
        to: SiteId,
    },
    /// A wire message failed to decode.
    Codec(&'static str),
    /// Address space exhausted during a first-fit attach.
    AddressSpaceFull,
    /// Internal invariant violation — a protocol bug if ever seen.
    Protocol(&'static str),
}

impl fmt::Display for MirageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MirageError::InvalidSize { requested } => {
                write!(f, "invalid segment size {requested} bytes")
            }
            MirageError::KeyExists(k) => write!(f, "segment key {k:?} already exists"),
            MirageError::NoSuchKey(k) => write!(f, "no segment with key {k:?}"),
            MirageError::NoSuchSegment(id) => write!(f, "no such segment {id:?}"),
            MirageError::PermissionDenied(id) => {
                write!(f, "permission denied on segment {id:?}")
            }
            MirageError::BadAddress { addr } => write!(f, "bad attach address {addr:#x}"),
            MirageError::NotAttached { addr } => {
                write!(f, "address {addr:#x} not covered by any attachment")
            }
            MirageError::AlreadyAttached(id) => {
                write!(f, "segment {id:?} already attached")
            }
            MirageError::UnknownSite(s) => write!(f, "unknown site {s:?}"),
            MirageError::CircuitDown { from, to } => {
                write!(f, "virtual circuit down between {from:?} and {to:?}")
            }
            MirageError::Codec(what) => write!(f, "wire codec error: {what}"),
            MirageError::AddressSpaceFull => write!(f, "address space full"),
            MirageError::Protocol(what) => write!(f, "protocol invariant violated: {what}"),
        }
    }
}

impl std::error::Error for MirageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_meaningfully() {
        let e = MirageError::NoSuchKey(SegKey(42));
        assert!(e.to_string().contains("42"));
        let e = MirageError::CircuitDown { from: SiteId(0), to: SiteId(1) };
        assert!(e.to_string().contains("S0"));
        assert!(e.to_string().contains("S1"));
    }
}
