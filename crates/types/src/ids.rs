//! Identifiers for sites, processes, segments, and pages.

use core::fmt;

/// A network site (one machine in the Locus network).
///
/// The paper's prototype network had three VAX 11/750s; our simulator and
/// host runtime support up to [`crate::access::SiteSet::CAPACITY`] sites,
/// bounded by the reader-mask representation in the `auxpte`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteId(pub u16);

impl SiteId {
    /// Returns the zero-based index of this site, for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site{}", self.0)
    }
}

/// A process, globally identified by its home site and a site-local number.
///
/// Locus processes are "relatively heavyweight" user processes (§6.0);
/// lightweight kernel server processes are not named by `Pid`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid {
    /// Site on which the process runs.
    pub site: SiteId,
    /// Site-local process number.
    pub local: u32,
}

impl Pid {
    /// Builds a process id from a site and a site-local number.
    #[inline]
    pub fn new(site: SiteId, local: u32) -> Self {
        Self { site, local }
    }
}

impl fmt::Debug for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}.{}", self.site.0, self.local)
    }
}

/// A shared-memory segment identifier, unique network-wide.
///
/// In System V terms this is the `shmid` returned by `shmget`. The site
/// that creates the segment is its *library site* (§6.0), so we embed the
/// creator in the id to make the library trivially locatable, exactly as a
/// distributed Locus kernel would route by origin site.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SegmentId {
    /// The creating site — also the library site for the segment.
    pub library: SiteId,
    /// Creator-local sequence number.
    pub serial: u32,
}

impl SegmentId {
    /// Builds a segment id.
    #[inline]
    pub fn new(library: SiteId, serial: u32) -> Self {
        Self { library, serial }
    }
}

impl fmt::Debug for SegmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seg{}@{:?}", self.serial, self.library)
    }
}

/// A System V IPC key: the *name* by which processes locate a segment.
///
/// §2.2: "The name provides a mechanism by which other processes can
/// locate the segment."
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SegKey(pub i32);

impl fmt::Debug for SegKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "key({})", self.0)
    }
}

/// A page number within a segment (zero-based).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageNum(pub u32);

impl PageNum {
    /// Returns the zero-based index of this page, for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the byte offset of the start of this page within its
    /// segment.
    #[inline]
    pub fn byte_offset(self) -> usize {
        self.index() * crate::PAGE_SIZE
    }

    /// Returns the page containing the given byte offset.
    #[inline]
    pub fn containing(offset: usize) -> Self {
        Self((offset / crate::PAGE_SIZE) as u32)
    }
}

impl fmt::Debug for PageNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pg{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_num_byte_offset_is_multiple_of_page_size() {
        assert_eq!(PageNum(0).byte_offset(), 0);
        assert_eq!(PageNum(1).byte_offset(), crate::PAGE_SIZE);
        assert_eq!(PageNum(7).byte_offset(), 7 * crate::PAGE_SIZE);
    }

    #[test]
    fn page_num_containing_inverts_byte_offset() {
        for pg in 0..16u32 {
            let p = PageNum(pg);
            assert_eq!(PageNum::containing(p.byte_offset()), p);
            assert_eq!(PageNum::containing(p.byte_offset() + crate::PAGE_SIZE - 1), p);
        }
    }

    #[test]
    fn segment_id_embeds_library_site() {
        let id = SegmentId::new(SiteId(2), 7);
        assert_eq!(id.library, SiteId(2));
        assert_eq!(id.serial, 7);
    }

    #[test]
    fn debug_formats_are_compact() {
        assert_eq!(format!("{:?}", SiteId(3)), "S3");
        assert_eq!(format!("{:?}", Pid::new(SiteId(1), 4)), "P1.4");
        assert_eq!(format!("{:?}", PageNum(9)), "pg9");
    }
}
