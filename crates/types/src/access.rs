//! Access modes, page protections, and site sets (the `auxpte` reader mask).

use core::fmt;

use crate::ids::SiteId;

/// The kind of memory access a process attempted, as classified by the
/// fault hardware.
///
/// §6.2: "Typed page fault detection is necessary for a reasonable
/// implementation. The machine architecture must be able to distinguish
/// between a read page-fault and a write page-fault." On the VAX the paper
/// reads a hardware bit in the interrupt service routine; our host runtime
/// reads the write bit of the x86-64 page-fault error code.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    /// A read access (needs at least a read copy of the page).
    Read,
    /// A write access (needs the sole writable copy of the page).
    Write,
}

impl Access {
    /// Returns true for [`Access::Write`].
    #[inline]
    pub fn is_write(self) -> bool {
        matches!(self, Access::Write)
    }
}

impl fmt::Debug for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Access::Read => write!(f, "R"),
            Access::Write => write!(f, "W"),
        }
    }
}

/// Hardware page protection for a resident page.
///
/// §6.0: "In many architectures, as in ours, a page may be read-only or
/// read-write." `None` models a non-resident (invalid) PTE.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum PageProt {
    /// The page is not present at this site (PTE invalid).
    #[default]
    None,
    /// A read-only copy is resident.
    Read,
    /// The (sole) writable copy is resident.
    ReadWrite,
}

impl PageProt {
    /// Does this protection satisfy the given access without a fault?
    #[inline]
    pub fn permits(self, access: Access) -> bool {
        matches!((self, access), (PageProt::ReadWrite, _) | (PageProt::Read, Access::Read))
    }

    /// Is the page resident at all (readable in some mode)?
    #[inline]
    pub fn is_resident(self) -> bool {
        !matches!(self, PageProt::None)
    }
}

/// A set of sites, stored as a hybrid inline/chunked bit mask.
///
/// This is the "reader mask — list of sites using this page" field of the
/// auxiliary page table entry (Table 2). Worlds at or below 64 sites —
/// every configuration the paper's experiments use — live entirely in the
/// inline `u64` word: the spill pointer stays null, so the whole set is
/// two machine words, `clone` is a 16-byte copy, and `drop` is a null
/// check. Worlds beyond 64 sites spill into heap chunks of 64 sites each
/// (chunk `k` bit `b` is site `64 + 64k + b`), lifting the ceiling to
/// the full `u16` site-id space. Reader masks ride inside `ProtoMsg` and
/// are cloned on every library serve, so the inline size is hot:
/// boxing the spill keeps the n≤64 message enum at its pre-chunking
/// footprint.
#[derive(PartialEq, Eq, Hash, Default)]
pub struct SiteSet {
    /// Bits for sites `0..64`.
    word0: u64,
    /// Chunks for sites `64..`: chunk `k` bit `b` is site `64 + 64k + b`.
    /// Kept canonical — `None` rather than an empty vec, and never
    /// ending in a zero chunk — so the derived `PartialEq`/`Hash` treat
    /// logically equal sets as equal.
    ///
    /// The box is not an accident: `Option<Box<Vec<u64>>>` is one
    /// niche-filled pointer, keeping the struct at 16 bytes, where a
    /// bare `Vec` would push it to 32 and bloat every `ProtoMsg` on the
    /// n≤64 hot path. The double indirection only costs worlds that
    /// already spill past 64 sites.
    #[allow(clippy::box_collection)]
    rest: Option<Box<Vec<u64>>>,
}

/// The reader mask of an auxiliary page table entry (Table 2).
///
/// Protocol code tracks "which sites hold read copies of this page" in
/// many places — the library's per-page record, the clock site's
/// invalidation round, the auxpte itself. All of them are the same
/// site bitmask; this alias names that protocol role so the
/// intent is visible at each use site.
pub type ReaderSet = SiteSet;

impl SiteSet {
    /// Maximum number of sites representable (the `u16` site-id space).
    pub const CAPACITY: usize = 1 << 16;

    /// Sites representable without heap allocation.
    pub const INLINE_CAPACITY: usize = 64;

    /// The empty set.
    #[inline]
    pub const fn empty() -> Self {
        Self { word0: 0, rest: None }
    }

    /// A set containing exactly one site.
    #[inline]
    pub fn singleton(site: SiteId) -> Self {
        let mut s = Self::empty();
        s.insert(site);
        s
    }

    /// Splits a site index into (chunk, bit): chunk 0 is the inline
    /// word, chunk `k ≥ 1` is `rest[k - 1]`.
    #[inline]
    fn split(site: SiteId) -> (usize, u64) {
        let i = site.index();
        (i / 64, 1u64 << (i % 64))
    }

    /// Drops trailing zero chunks — and the spill box itself when it
    /// empties — so structural equality is set equality.
    #[inline]
    fn canonicalize(&mut self) {
        if let Some(v) = &mut self.rest {
            while v.last() == Some(&0) {
                v.pop();
            }
            if v.is_empty() {
                self.rest = None;
            }
        }
    }

    /// The spill chunks as a slice (empty when nothing is spilled).
    #[inline]
    fn spill(&self) -> &[u64] {
        match &self.rest {
            Some(v) => v,
            None => &[],
        }
    }

    /// Inserts a site; returns true if it was not already present.
    #[inline]
    pub fn insert(&mut self, site: SiteId) -> bool {
        let (chunk, bit) = Self::split(site);
        if chunk == 0 {
            let fresh = self.word0 & bit == 0;
            self.word0 |= bit;
            return fresh;
        }
        let v = self.rest.get_or_insert_with(Default::default);
        if v.len() < chunk {
            v.resize(chunk, 0);
        }
        let word = &mut v[chunk - 1];
        let fresh = *word & bit == 0;
        *word |= bit;
        fresh
    }

    /// Removes a site; returns true if it was present.
    #[inline]
    pub fn remove(&mut self, site: SiteId) -> bool {
        let (chunk, bit) = Self::split(site);
        if chunk == 0 {
            let present = self.word0 & bit != 0;
            self.word0 &= !bit;
            return present;
        }
        let Some(v) = &mut self.rest else {
            return false;
        };
        let Some(word) = v.get_mut(chunk - 1) else {
            return false;
        };
        let present = *word & bit != 0;
        *word &= !bit;
        self.canonicalize();
        present
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, site: SiteId) -> bool {
        let (chunk, bit) = Self::split(site);
        let word = if chunk == 0 {
            self.word0
        } else {
            self.spill().get(chunk - 1).copied().unwrap_or(0)
        };
        word & bit != 0
    }

    /// Number of sites in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.word0.count_ones() as usize
            + self.spill().iter().map(|w| w.count_ones() as usize).sum::<usize>()
    }

    /// True if the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        // Canonical form: the spill box exists only while a chunk is
        // nonzero, so any box at all means a member beyond 64.
        self.word0 == 0 && self.rest.is_none()
    }

    /// Returns the union of two sets.
    #[inline]
    pub fn union(&self, other: &Self) -> Self {
        let mut out = self.clone();
        out.word0 |= other.word0;
        if let Some(ow) = &other.rest {
            let v = out.rest.get_or_insert_with(Default::default);
            if v.len() < ow.len() {
                v.resize(ow.len(), 0);
            }
            for (o, w) in v.iter_mut().zip(ow.iter()) {
                *o |= w;
            }
        }
        out
    }

    /// Returns the set difference `self \ other`.
    #[inline]
    pub fn difference(&self, other: &Self) -> Self {
        let mut out = self.clone();
        out.word0 &= !other.word0;
        if let Some(v) = &mut out.rest {
            for (o, w) in v.iter_mut().zip(other.spill()) {
                *o &= !w;
            }
        }
        out.canonicalize();
        out
    }

    /// True if the two sets share at least one member.
    #[inline]
    pub fn intersects(&self, other: &Self) -> bool {
        if self.word0 & other.word0 != 0 {
            return true;
        }
        self.spill().iter().zip(other.spill()).any(|(a, b)| a & b != 0)
    }

    /// Removes every site from the set.
    #[inline]
    pub fn clear(&mut self) {
        self.word0 = 0;
        self.rest = None;
    }

    /// Iterates the member sites in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = SiteId> + '_ {
        let chunks = self.spill();
        let mut chunk = 0usize;
        let mut bits = self.word0;
        core::iter::from_fn(move || loop {
            if bits != 0 {
                let idx = chunk * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                return Some(SiteId(idx as u16));
            }
            if chunk >= chunks.len() {
                return None;
            }
            bits = chunks[chunk];
            chunk += 1;
        })
    }

    /// Returns an arbitrary member (the lowest-numbered), if any.
    ///
    /// Used when the library must pick one reader to become the clock
    /// site: "if there are a set of readers using the page simultaneously,
    /// one of the readers is selected and its site chosen as the page's
    /// clock site" (§6.0).
    #[inline]
    pub fn first(&self) -> Option<SiteId> {
        if self.word0 != 0 {
            return Some(SiteId(self.word0.trailing_zeros() as u16));
        }
        for (k, w) in self.spill().iter().enumerate() {
            if *w != 0 {
                return Some(SiteId((64 + k * 64 + w.trailing_zeros() as usize) as u16));
            }
        }
        None
    }

    /// The inline word (bits for sites `0..64`), for the wire codec's
    /// compatibility fast path.
    #[inline]
    pub fn inline_word(&self) -> u64 {
        self.word0
    }

    /// The heap chunks (bits for sites `64..`), canonical (no trailing
    /// zero chunk). Chunk `k` bit `b` is site `64 + 64k + b`.
    #[inline]
    pub fn chunks(&self) -> &[u64] {
        self.spill()
    }

    /// Rebuilds a set from the raw parts [`Self::inline_word`] and
    /// [`Self::chunks`] expose (the wire codec's decode path). Trailing
    /// zero chunks are tolerated and normalized away.
    pub fn from_raw_parts(word0: u64, rest: Vec<u64>) -> Self {
        let mut s =
            Self { word0, rest: if rest.is_empty() { None } else { Some(Box::new(rest)) } };
        s.canonicalize();
        s
    }
}

impl Clone for SiteSet {
    /// Hand-written with `#[inline]` so the n≤64 case — the canonical
    /// invariant keeps the spill pointer null for any set confined to
    /// the inline word — compiles to a 16-byte copy at the call site
    /// instead of an outlined generic `Option<Box<Vec>>` clone. The
    /// protocol hot path clones reader masks on every serve, so this is
    /// the difference between a register move and a call.
    #[inline]
    fn clone(&self) -> Self {
        match &self.rest {
            None => Self { word0: self.word0, rest: None },
            Some(v) => Self { word0: self.word0, rest: Some(v.clone()) },
        }
    }

    #[inline]
    fn clone_from(&mut self, src: &Self) {
        self.word0 = src.word0;
        match (&mut self.rest, &src.rest) {
            (_, None) => self.rest = None,
            // Reuse the existing box and its capacity when both spill.
            (Some(dst), Some(s)) => dst.clone_from(s),
            (dst @ None, Some(s)) => *dst = Some(s.clone()),
        }
    }
}

impl FromIterator<SiteId> for SiteSet {
    fn from_iter<T: IntoIterator<Item = SiteId>>(iter: T) -> Self {
        let mut s = Self::empty();
        for site in iter {
            s.insert(site);
        }
        s
    }
}

impl fmt::Debug for SiteSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prot_permits_matrix() {
        assert!(!PageProt::None.permits(Access::Read));
        assert!(!PageProt::None.permits(Access::Write));
        assert!(PageProt::Read.permits(Access::Read));
        assert!(!PageProt::Read.permits(Access::Write));
        assert!(PageProt::ReadWrite.permits(Access::Read));
        assert!(PageProt::ReadWrite.permits(Access::Write));
    }

    #[test]
    fn site_set_insert_remove_contains() {
        let mut s = SiteSet::empty();
        assert!(s.is_empty());
        assert!(s.insert(SiteId(3)));
        assert!(!s.insert(SiteId(3)));
        assert!(s.contains(SiteId(3)));
        assert_eq!(s.len(), 1);
        assert!(s.remove(SiteId(3)));
        assert!(!s.remove(SiteId(3)));
        assert!(s.is_empty());
    }

    #[test]
    fn site_set_iterates_in_order() {
        let s: SiteSet = [SiteId(5), SiteId(1), SiteId(63)].into_iter().collect();
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![SiteId(1), SiteId(5), SiteId(63)]);
        assert_eq!(s.first(), Some(SiteId(1)));
    }

    #[test]
    fn site_set_difference_and_union() {
        let a: SiteSet = [SiteId(1), SiteId(2)].into_iter().collect();
        let b: SiteSet = [SiteId(2), SiteId(3)].into_iter().collect();
        assert_eq!(a.union(&b).len(), 3);
        let d = a.difference(&b);
        assert!(d.contains(SiteId(1)));
        assert!(!d.contains(SiteId(2)));
    }

    #[test]
    fn site_set_crosses_the_inline_boundary() {
        let mut s = SiteSet::empty();
        for i in [0u16, 63, 64, 65, 127, 128, 1023, 65535] {
            assert!(s.insert(SiteId(i)));
            assert!(!s.insert(SiteId(i)));
        }
        assert_eq!(s.len(), 8);
        let v: Vec<_> = s.iter().map(|s| s.0).collect();
        assert_eq!(v, vec![0, 63, 64, 65, 127, 128, 1023, 65535]);
        assert!(s.contains(SiteId(1023)));
        assert!(!s.contains(SiteId(1024)));
        assert!(s.remove(SiteId(65535)));
        assert!(!s.remove(SiteId(65535)));
        assert!(!s.contains(SiteId(65535)));
        assert_eq!(s.len(), 7);
    }

    #[test]
    fn site_set_equality_ignores_spilled_history() {
        // Insert far, remove it: the set must compare equal to one that
        // never spilled (canonical form drops trailing zero chunks).
        let mut a = SiteSet::singleton(SiteId(2));
        a.insert(SiteId(900));
        a.remove(SiteId(900));
        let b = SiteSet::singleton(SiteId(2));
        assert_eq!(a, b);
        assert!(a.chunks().is_empty());
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{
            Hash,
            Hasher,
        };
        let hash = |s: &SiteSet| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
    }

    #[test]
    fn site_set_large_union_difference_intersects() {
        let a: SiteSet = (0..200u16).map(SiteId).collect();
        let b: SiteSet = (100..300u16).map(SiteId).collect();
        let u = a.union(&b);
        assert_eq!(u.len(), 300);
        let d = a.difference(&b);
        assert_eq!(d.len(), 100);
        assert!(d.contains(SiteId(99)));
        assert!(!d.contains(SiteId(100)));
        assert!(a.intersects(&b));
        let far = SiteSet::singleton(SiteId(5000));
        assert!(!a.intersects(&far));
        assert!(u.difference(&u).is_empty());
        // Differencing away the spilled tail re-canonicalizes.
        let spill_gone = b.difference(&b);
        assert!(spill_gone.chunks().is_empty());
    }

    #[test]
    fn site_set_raw_parts_round_trip() {
        let s: SiteSet = [SiteId(3), SiteId(64), SiteId(200)].into_iter().collect();
        let rebuilt = SiteSet::from_raw_parts(s.inline_word(), s.chunks().to_vec());
        assert_eq!(rebuilt, s);
        // Trailing zero chunks normalize away.
        let padded = SiteSet::from_raw_parts(1, vec![0, 0, 0]);
        assert_eq!(padded, SiteSet::singleton(SiteId(0)));
    }
}
