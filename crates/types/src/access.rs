//! Access modes, page protections, and site sets (the `auxpte` reader mask).

use core::fmt;

use crate::ids::SiteId;

/// The kind of memory access a process attempted, as classified by the
/// fault hardware.
///
/// §6.2: "Typed page fault detection is necessary for a reasonable
/// implementation. The machine architecture must be able to distinguish
/// between a read page-fault and a write page-fault." On the VAX the paper
/// reads a hardware bit in the interrupt service routine; our host runtime
/// reads the write bit of the x86-64 page-fault error code.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    /// A read access (needs at least a read copy of the page).
    Read,
    /// A write access (needs the sole writable copy of the page).
    Write,
}

impl Access {
    /// Returns true for [`Access::Write`].
    #[inline]
    pub fn is_write(self) -> bool {
        matches!(self, Access::Write)
    }
}

impl fmt::Debug for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Access::Read => write!(f, "R"),
            Access::Write => write!(f, "W"),
        }
    }
}

/// Hardware page protection for a resident page.
///
/// §6.0: "In many architectures, as in ours, a page may be read-only or
/// read-write." `None` models a non-resident (invalid) PTE.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum PageProt {
    /// The page is not present at this site (PTE invalid).
    #[default]
    None,
    /// A read-only copy is resident.
    Read,
    /// The (sole) writable copy is resident.
    ReadWrite,
}

impl PageProt {
    /// Does this protection satisfy the given access without a fault?
    #[inline]
    pub fn permits(self, access: Access) -> bool {
        matches!((self, access), (PageProt::ReadWrite, _) | (PageProt::Read, Access::Read))
    }

    /// Is the page resident at all (readable in some mode)?
    #[inline]
    pub fn is_resident(self) -> bool {
        !matches!(self, PageProt::None)
    }
}

/// A set of sites, stored as a bit mask.
///
/// This is the "reader mask — list of sites using this page" field of the
/// auxiliary page table entry (Table 2). A `u64` mask bounds the network
/// at 64 sites, far beyond the paper's three VAXs and ample for the
/// invalidation-scaling experiments.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SiteSet(u64);

/// The reader mask of an auxiliary page table entry (Table 2).
///
/// Protocol code tracks "which sites hold read copies of this page" in
/// many places — the library's per-page record, the clock site's
/// invalidation round, the auxpte itself. All of them are the same
/// 64-bit site bitmask; this alias names that protocol role so the
/// intent is visible at each use site.
pub type ReaderSet = SiteSet;

impl SiteSet {
    /// Maximum number of sites representable.
    pub const CAPACITY: usize = 64;

    /// The empty set.
    #[inline]
    pub const fn empty() -> Self {
        Self(0)
    }

    /// A set containing exactly one site.
    #[inline]
    pub fn singleton(site: SiteId) -> Self {
        let mut s = Self::empty();
        s.insert(site);
        s
    }

    /// Inserts a site; returns true if it was not already present.
    #[inline]
    pub fn insert(&mut self, site: SiteId) -> bool {
        debug_assert!(site.index() < Self::CAPACITY, "site id out of range");
        let bit = 1u64 << site.index();
        let fresh = self.0 & bit == 0;
        self.0 |= bit;
        fresh
    }

    /// Removes a site; returns true if it was present.
    #[inline]
    pub fn remove(&mut self, site: SiteId) -> bool {
        let bit = 1u64 << site.index();
        let present = self.0 & bit != 0;
        self.0 &= !bit;
        present
    }

    /// Membership test.
    #[inline]
    pub fn contains(self, site: SiteId) -> bool {
        self.0 & (1u64 << site.index()) != 0
    }

    /// Number of sites in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True if the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Returns the union of two sets.
    #[inline]
    pub fn union(self, other: Self) -> Self {
        Self(self.0 | other.0)
    }

    /// Returns the set difference `self \ other`.
    #[inline]
    pub fn difference(self, other: Self) -> Self {
        Self(self.0 & !other.0)
    }

    /// Removes every site from the set.
    #[inline]
    pub fn clear(&mut self) {
        self.0 = 0;
    }

    /// Iterates the member sites in ascending id order.
    pub fn iter(self) -> impl Iterator<Item = SiteId> {
        let mut bits = self.0;
        core::iter::from_fn(move || {
            if bits == 0 {
                return None;
            }
            let idx = bits.trailing_zeros() as u16;
            bits &= bits - 1;
            Some(SiteId(idx))
        })
    }

    /// Returns an arbitrary member (the lowest-numbered), if any.
    ///
    /// Used when the library must pick one reader to become the clock
    /// site: "if there are a set of readers using the page simultaneously,
    /// one of the readers is selected and its site chosen as the page's
    /// clock site" (§6.0).
    #[inline]
    pub fn first(self) -> Option<SiteId> {
        if self.0 == 0 {
            None
        } else {
            Some(SiteId(self.0.trailing_zeros() as u16))
        }
    }
}

impl FromIterator<SiteId> for SiteSet {
    fn from_iter<T: IntoIterator<Item = SiteId>>(iter: T) -> Self {
        let mut s = Self::empty();
        for site in iter {
            s.insert(site);
        }
        s
    }
}

impl fmt::Debug for SiteSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prot_permits_matrix() {
        assert!(!PageProt::None.permits(Access::Read));
        assert!(!PageProt::None.permits(Access::Write));
        assert!(PageProt::Read.permits(Access::Read));
        assert!(!PageProt::Read.permits(Access::Write));
        assert!(PageProt::ReadWrite.permits(Access::Read));
        assert!(PageProt::ReadWrite.permits(Access::Write));
    }

    #[test]
    fn site_set_insert_remove_contains() {
        let mut s = SiteSet::empty();
        assert!(s.is_empty());
        assert!(s.insert(SiteId(3)));
        assert!(!s.insert(SiteId(3)));
        assert!(s.contains(SiteId(3)));
        assert_eq!(s.len(), 1);
        assert!(s.remove(SiteId(3)));
        assert!(!s.remove(SiteId(3)));
        assert!(s.is_empty());
    }

    #[test]
    fn site_set_iterates_in_order() {
        let s: SiteSet = [SiteId(5), SiteId(1), SiteId(63)].into_iter().collect();
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![SiteId(1), SiteId(5), SiteId(63)]);
        assert_eq!(s.first(), Some(SiteId(1)));
    }

    #[test]
    fn site_set_difference_and_union() {
        let a: SiteSet = [SiteId(1), SiteId(2)].into_iter().collect();
        let b: SiteSet = [SiteId(2), SiteId(3)].into_iter().collect();
        assert_eq!(a.union(b).len(), 3);
        let d = a.difference(b);
        assert!(d.contains(SiteId(1)));
        assert!(!d.contains(SiteId(2)));
    }
}
