//! Sub-page write diffs: XOR span codec and content-hash base tags.
//!
//! Mirage moves whole 512-byte pages on every serve (§7.2: "three of
//! these messages are large responses"), so two writers touching
//! disjoint halves of one page pay full-page wire costs for a few bytes
//! of real change. The delta-grant mode encodes a grant as the XOR
//! between the recipient's last-known copy (the *base*) and the page
//! being served (the *target*), run-length grouped into spans of
//! consecutive differing bytes.
//!
//! The codec is deliberately dumb and canonical:
//!
//! * A [`DiffSpan`] is a maximal run of differing bytes — every XOR
//!   byte is non-zero, runs are separated by at least one equal byte.
//! * [`PageDiff::compute`] produces the unique canonical diff;
//!   [`PageDiff::from_spans`] (the decode path) rejects anything
//!   non-canonical, so a diff on the wire has exactly one encoding.
//! * [`PageDiff::apply`] XORs the spans into a base copy in place;
//!   applying a diff to the base it was computed from yields the target
//!   byte-for-byte, and applying it twice round-trips back.
//!
//! Base identity travels as a [`fnv64`] content hash rather than an
//! explicit version number: both ends of a full-page transfer hash the
//! bytes they sent/installed, so any full grant bootstraps delta mode
//! without widening the full-grant wire format.

use crate::error::{
    MirageError,
    Result,
};
use crate::PAGE_SIZE;

/// Upper bound on spans in one diff. With every span at least one byte
/// long and separated by at least one equal byte, a 512-byte page fits
/// at most 256 spans; a wire claim above this is garbage and must be
/// rejected before allocation.
pub const MAX_DIFF_SPANS: usize = PAGE_SIZE / 2;

/// One maximal run of differing bytes: `xor[i]` is `base[offset + i] ^
/// target[offset + i]`, and every byte is non-zero.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiffSpan {
    /// Byte offset of the run within the page.
    pub offset: u16,
    /// XOR of base and target over the run; all bytes non-zero.
    pub xor: Vec<u8>,
}

impl DiffSpan {
    /// Exclusive end offset of the run.
    fn end(&self) -> usize {
        self.offset as usize + self.xor.len()
    }
}

/// A canonical XOR diff between two page images.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PageDiff {
    spans: Vec<DiffSpan>,
}

impl PageDiff {
    /// Computes the canonical diff turning `base` into `target`.
    ///
    /// Both slices must be exactly [`PAGE_SIZE`] bytes.
    pub fn compute(base: &[u8], target: &[u8]) -> PageDiff {
        assert_eq!(base.len(), PAGE_SIZE, "diff base must be a full page");
        assert_eq!(target.len(), PAGE_SIZE, "diff target must be a full page");
        let mut spans = Vec::new();
        let mut i = 0;
        while i < PAGE_SIZE {
            if base[i] == target[i] {
                i += 1;
                continue;
            }
            let start = i;
            while i < PAGE_SIZE && base[i] != target[i] {
                i += 1;
            }
            let xor =
                base[start..i].iter().zip(&target[start..i]).map(|(b, t)| b ^ t).collect();
            spans.push(DiffSpan { offset: start as u16, xor });
        }
        PageDiff { spans }
    }

    /// Builds a diff from decoded spans, rejecting non-canonical input.
    ///
    /// # Errors
    ///
    /// Returns [`MirageError::Codec`] if any span is empty, reaches past
    /// the page, contains a zero XOR byte (that position did not
    /// change, so it belongs to the gap), or is not separated from its
    /// predecessor by at least one unchanged byte (adjacent runs must
    /// merge), or if there are more than [`MAX_DIFF_SPANS`] spans.
    pub fn from_spans(spans: Vec<DiffSpan>) -> Result<PageDiff> {
        if spans.len() > MAX_DIFF_SPANS {
            return Err(MirageError::Codec("too many diff spans"));
        }
        let mut prev_end: usize = 0;
        for (i, s) in spans.iter().enumerate() {
            if s.xor.is_empty() {
                return Err(MirageError::Codec("empty diff span"));
            }
            if s.end() > PAGE_SIZE {
                return Err(MirageError::Codec("diff span past end of page"));
            }
            if i > 0 && (s.offset as usize) <= prev_end {
                return Err(MirageError::Codec("diff spans out of order or unmerged"));
            }
            if s.xor.contains(&0) {
                return Err(MirageError::Codec("zero byte inside diff span"));
            }
            prev_end = s.end();
        }
        Ok(PageDiff { spans })
    }

    /// The spans, in increasing offset order.
    pub fn spans(&self) -> &[DiffSpan] {
        &self.spans
    }

    /// True if base and target were identical.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// XORs the diff into `page` in place. Applying the diff to the
    /// base it was computed from yields the target; applying it again
    /// restores the base.
    pub fn apply(&self, page: &mut [u8]) {
        assert_eq!(page.len(), PAGE_SIZE, "diff applies to a full page");
        for s in &self.spans {
            for (i, x) in s.xor.iter().enumerate() {
                page[s.offset as usize + i] ^= x;
            }
        }
    }

    /// Encoded payload size in bytes: a `u16` span count, then per span
    /// a `u16` offset, `u16` length, and the XOR bytes. This is what
    /// the size-aware cost model charges and what the sender compares
    /// against a full page before choosing the delta wire form.
    pub fn wire_size(&self) -> usize {
        2 + self.spans.iter().map(|s| 4 + s.xor.len()).sum::<usize>()
    }
}

/// FNV-1a 64-bit hash, used as the content tag identifying a delta
/// base. Both ends of a page transfer hash the bytes independently, so
/// the tag never needs to travel with a full grant.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Prng;

    fn page(fill: impl FnMut(usize) -> u8) -> Vec<u8> {
        (0..PAGE_SIZE).map(fill).collect()
    }

    #[test]
    fn identical_pages_diff_empty() {
        let a = page(|i| i as u8);
        let d = PageDiff::compute(&a, &a);
        assert!(d.is_empty());
        assert_eq!(d.wire_size(), 2);
    }

    #[test]
    fn single_byte_change_is_one_tiny_span() {
        let a = page(|_| 0);
        let mut b = a.clone();
        b[300] = 7;
        let d = PageDiff::compute(&a, &b);
        assert_eq!(d.spans().len(), 1);
        assert_eq!(d.spans()[0].offset, 300);
        assert_eq!(d.spans()[0].xor, vec![7]);
        assert_eq!(d.wire_size(), 2 + 4 + 1);
    }

    #[test]
    fn apply_turns_base_into_target_and_back() {
        let mut rng = Prng::new(0xD1FF);
        for _ in 0..64 {
            let a = page(|_| rng.next_u32() as u8);
            let mut b = a.clone();
            // Mutate a few random runs.
            for _ in 0..(rng.next_u32() % 8) {
                let at = rng.next_u32() as usize % PAGE_SIZE;
                let len = 1 + rng.next_u32() as usize % 32;
                for byte in &mut b[at..(at + len).min(PAGE_SIZE)] {
                    *byte = rng.next_u32() as u8;
                }
            }
            let d = PageDiff::compute(&a, &b);
            let mut patched = a.clone();
            d.apply(&mut patched);
            assert_eq!(patched, b);
            d.apply(&mut patched);
            assert_eq!(patched, a);
            // Canonical output passes its own validation.
            PageDiff::from_spans(d.spans().to_vec()).expect("canonical");
        }
    }

    #[test]
    fn non_canonical_spans_rejected() {
        // Empty span.
        assert!(PageDiff::from_spans(vec![DiffSpan { offset: 0, xor: vec![] }]).is_err());
        // Past end of page.
        assert!(PageDiff::from_spans(vec![DiffSpan { offset: 511, xor: vec![1, 2] }]).is_err());
        // Zero XOR byte inside a span.
        assert!(PageDiff::from_spans(vec![DiffSpan { offset: 0, xor: vec![1, 0, 1] }]).is_err());
        // Adjacent spans must merge.
        assert!(PageDiff::from_spans(vec![
            DiffSpan { offset: 0, xor: vec![1] },
            DiffSpan { offset: 1, xor: vec![1] },
        ])
        .is_err());
        // Out of order.
        assert!(PageDiff::from_spans(vec![
            DiffSpan { offset: 10, xor: vec![1] },
            DiffSpan { offset: 2, xor: vec![1] },
        ])
        .is_err());
        // Separated spans are fine.
        assert!(PageDiff::from_spans(vec![
            DiffSpan { offset: 0, xor: vec![1] },
            DiffSpan { offset: 2, xor: vec![1] },
        ])
        .is_ok());
    }

    #[test]
    fn fnv64_distinguishes_content() {
        let a = page(|_| 0);
        let mut b = a.clone();
        b[0] = 1;
        assert_ne!(fnv64(&a), fnv64(&b));
        assert_eq!(fnv64(&a), fnv64(&a));
        // Pinned reference value for the all-zero page (FNV-1a).
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
