//! A small deterministic PRNG for tests, benches, and workload
//! generation.
//!
//! The repo runs fully offline and every reproduced figure must be
//! bit-identical across runs, so all randomness flows through this
//! explicitly-seeded generator (an `xorshift64*` over a splitmix-mixed
//! seed) rather than an external crate or OS entropy.

/// A seeded `xorshift64*` pseudo-random generator.
#[derive(Clone, Debug)]
pub struct Prng(u64);

impl Prng {
    /// Creates a generator from a seed; any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        // One splitmix64 round decorrelates small consecutive seeds and
        // maps 0 away from the xorshift fixed point.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Self((z ^ (z >> 31)) | 1)
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// The next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform value in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        // Modulo bias is ≤ n/2^64 — irrelevant for test-sized ranges.
        self.next_u64() % n
    }

    /// A uniform `usize` in `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// A fair coin flip.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let a: Vec<u64> = (0..8).map(|_| Prng::new(42).next_u64()).collect();
        assert!(a.windows(2).all(|w| w[0] == w[1]));
        let mut r1 = Prng::new(7);
        let mut r2 = Prng::new(7);
        for _ in 0..100 {
            assert_eq!(r1.next_u64(), r2.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut seen = std::collections::HashSet::new();
        for seed in 0..64u64 {
            assert!(seen.insert(Prng::new(seed).next_u64()));
        }
    }

    #[test]
    fn below_stays_in_range_and_covers() {
        let mut r = Prng::new(1);
        let mut hit = [false; 10];
        for _ in 0..1000 {
            let v = r.below(10) as usize;
            assert!(v < 10);
            hit[v] = true;
        }
        assert!(hit.iter().all(|&h| h), "all residues should appear");
        assert!((0..100).any(|_| r.flip()) && (0..100).any(|_| !r.flip()));
    }

    #[test]
    fn range_bounds_inclusive_exclusive() {
        let mut r = Prng::new(3);
        for _ in 0..100 {
            let v = r.range(5, 8);
            assert!((5..8).contains(&v));
        }
    }
}
