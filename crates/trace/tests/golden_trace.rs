//! Golden protocol traces for two canonical flows.
//!
//! Each scenario drives real [`mirage_core::SiteEngine`]s through a
//! tiny instant-delivery harness with tracing enabled, encodes the
//! collected trace as JSON Lines, and compares it byte-for-byte against
//! a checked-in golden file. The goldens pin the *event vocabulary*:
//! any change to what the engines emit — new events, reordered
//! emission, changed fields — shows up as a readable diff here.
//!
//! To re-bless after an intentional change:
//!
//! ```text
//! MIRAGE_BLESS=1 cargo test -p mirage-trace --test golden_trace
//! ```
//!
//! Golden traces must also satisfy the offline checker — a golden that
//! fails [`mirage_trace::check`] cannot be blessed.

use std::collections::VecDeque;
use std::path::PathBuf;

use mirage_core::{
    DriverOps,
    Event,
    InMemStore,
    PageStore,
    ProtoMsg,
    ProtocolConfig,
    ProtocolDriver,
    RefLogEntry,
    RetryPolicy,
};
use mirage_mem::LocalSegment;
use mirage_trace::{
    check,
    event_to_json,
    TraceEvent,
};
use mirage_types::{
    Access,
    Delta,
    PageNum,
    Pid,
    SegmentId,
    SimTime,
    SiteId,
};

const PAGE: PageNum = PageNum(0);

/// Instant-delivery two-phase harness: messages arrive in FIFO order at
/// the same virtual instant; timers advance the clock. Everything the
/// engines trace is collected in emission order.
struct Mini {
    drivers: Vec<ProtocolDriver>,
    stores: Vec<InMemStore>,
    now: SimTime,
    net: VecDeque<(SiteId, SiteId, ProtoMsg)>,
    timers: Vec<(SimTime, SiteId, u64)>,
    trace: Vec<TraceEvent>,
}

struct MiniOps<'a> {
    from: SiteId,
    net: &'a mut VecDeque<(SiteId, SiteId, ProtoMsg)>,
    timers: &'a mut Vec<(SimTime, SiteId, u64)>,
    trace: &'a mut Vec<TraceEvent>,
}

impl DriverOps for MiniOps<'_> {
    fn send(&mut self, to: SiteId, msg: ProtoMsg) {
        self.net.push_back((self.from, to, msg));
    }
    fn wake(&mut self, _pid: Pid) {}
    fn set_timer(&mut self, at: SimTime, token: u64) {
        self.timers.push((at, self.from, token));
    }
    fn log(&mut self, _entry: RefLogEntry) {}
    fn trace(&mut self, ev: TraceEvent) {
        self.trace.push(ev);
    }
}

impl Mini {
    fn new(n: usize, config: ProtocolConfig) -> Self {
        let drivers = (0..n)
            .map(|i| {
                let mut d = ProtocolDriver::from_config(SiteId(i as u16), config.clone());
                d.set_tracing(true);
                d
            })
            .collect();
        Mini {
            drivers,
            stores: (0..n).map(|_| InMemStore::new()).collect(),
            now: SimTime::ZERO,
            net: VecDeque::new(),
            timers: Vec::new(),
            trace: Vec::new(),
        }
    }

    fn create_segment(&mut self, lib: usize, pages: usize) -> SegmentId {
        let seg = SegmentId::new(SiteId(lib as u16), 1);
        for (i, (drv, store)) in self.drivers.iter_mut().zip(self.stores.iter_mut()).enumerate()
        {
            let view = if i == lib {
                LocalSegment::fully_resident(seg, pages)
            } else {
                LocalSegment::absent(seg, pages)
            };
            store.add_segment(view);
            drv.register_segment(seg, pages);
        }
        seg
    }

    fn dispatch(&mut self, site: usize, ev: Event) {
        let Mini { drivers, stores, now, net, timers, trace } = self;
        drivers[site].drive(
            ev,
            *now,
            &mut stores[site],
            &mut MiniOps { from: SiteId(site as u16), net, timers, trace },
        );
    }

    fn run(&mut self) {
        loop {
            if let Some((from, to, msg)) = self.net.pop_front() {
                self.dispatch(to.index(), Event::Deliver { from, msg });
                continue;
            }
            if !self.timers.is_empty() {
                let idx = self
                    .timers
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &(at, _, _))| at)
                    .map(|(i, _)| i)
                    .unwrap();
                let (at, site, token) = self.timers.remove(idx);
                if at > self.now {
                    self.now = at;
                }
                self.dispatch(site.index(), Event::Timer { token });
                continue;
            }
            break;
        }
    }

    /// Faults until `access` is granted (at most a few rounds), like a
    /// process re-faulting after a wake.
    fn acquire(&mut self, site: usize, local: u32, seg: SegmentId, access: Access) {
        self.acquire_on(site, local, seg, PAGE, access);
    }

    /// [`Mini::acquire`] aimed at an arbitrary page (the timestamp
    /// flows need a second page to advance the program timestamp).
    fn acquire_on(
        &mut self,
        site: usize,
        local: u32,
        seg: SegmentId,
        page: PageNum,
        access: Access,
    ) {
        for _ in 0..8 {
            if self.stores[site].prot(seg, page).permits(access) {
                return;
            }
            let pid = Pid::new(SiteId(site as u16), local);
            self.dispatch(site, Event::Fault { pid, seg, page, access });
            self.run();
        }
        panic!("site {site} never acquired {access:?} on {page:?}");
    }

    /// Acquires write access and stores one word, like a process making
    /// a small in-page mutation between transfers.
    fn write_u32(&mut self, site: usize, local: u32, seg: SegmentId, off: usize, val: u32) {
        self.acquire(site, local, seg, Access::Write);
        self.stores[site]
            .segment_mut(seg)
            .unwrap()
            .frame_mut(PAGE)
            .unwrap()
            .store_u32(off, val);
    }
}

/// Two sites trade the write copy back and forth (the Figure 7 inner
/// loop, collapsed to one exchange each way).
fn ping_pong() -> Vec<TraceEvent> {
    let mut m = Mini::new(2, ProtocolConfig::paper(Delta::ZERO));
    let seg = m.create_segment(0, 1);
    m.acquire(1, 1, seg, Access::Write);
    m.acquire(0, 1, seg, Access::Write);
    m.acquire(1, 1, seg, Access::Write);
    m.trace
}

/// The §6.1 optimization pair: a reader's write demand upgrades its
/// copy in place (no data on the wire), and a writer serving a read
/// demand downgrades instead of relinquishing.
fn upgrade_downgrade() -> Vec<TraceEvent> {
    let mut m = Mini::new(2, ProtocolConfig::paper(Delta::ZERO));
    let seg = m.create_segment(0, 1);
    // Site 1 reads, then writes: upgrade in place (optimization 1).
    m.acquire(1, 1, seg, Access::Read);
    m.acquire(1, 1, seg, Access::Write);
    // Site 0 reads while site 1 holds the write copy: downgrade
    // (optimization 2) — site 1 keeps a read copy.
    m.acquire(0, 1, seg, Access::Read);
    m.trace
}

/// A full library-role relocation: freeze → transfer → activate, then a
/// stale-hint request bounced off the forwarding stub (redirect) and
/// re-served by the new library site under the bumped epoch. Retry mode
/// is on — the handoff subprotocol requires it — so this golden also
/// pins the ack vocabulary around a handoff.
fn library_handoff() -> Vec<TraceEvent> {
    let cfg = ProtocolConfig {
        retry: Some(RetryPolicy::default()),
        ..ProtocolConfig::paper(Delta::ZERO)
    };
    let mut m = Mini::new(3, cfg);
    let seg = m.create_segment(0, 1);
    // Site 1 takes the write copy through the library at its creation
    // site; its hint now points at site 0.
    m.acquire(1, 1, seg, Access::Write);
    // The role moves to site 2 (freeze → transfer → activate → ack);
    // site 1 is not told.
    m.dispatch(0, Event::MigrateLibrary { seg, to: SiteId(2), shard: None });
    m.run();
    // Site 0 pulls a read copy — served by the library at its new site,
    // downgrading site 1.
    m.acquire(0, 1, seg, Access::Read);
    // Site 1 upgrades back to write through its stale hint: the stub at
    // site 0 redirects, site 1 chases the epoch, site 2 serves.
    m.acquire(1, 1, seg, Access::Write);
    m.trace
}

/// The sub-page diff steady state: two writers alternate single-word
/// stores to one page with `delta_grants` on. The first transfer each
/// way is a full `PageGrant` (no shadow base yet); once both sides hold
/// a shadow, every further serve ships a `PageGrantDelta` that the
/// receiver patches in place — the golden pins the
/// `delta_grant_sent` → `delta_patched` vocabulary, and the checker
/// verifies each patched page against the full-serve bytes.
fn delta_grant() -> Vec<TraceEvent> {
    let cfg = ProtocolConfig { delta_grants: true, ..ProtocolConfig::paper(Delta::ZERO) };
    let mut m = Mini::new(2, cfg);
    let seg = m.create_segment(0, 1);
    m.write_u32(1, 1, seg, 0, 1); // full grant: no base at site 1 yet
    m.write_u32(0, 1, seg, 4, 2); // full grant back: no base at site 0
    m.write_u32(1, 1, seg, 8, 3); // delta: one-word span vs shared base
    m.write_u32(0, 1, seg, 12, 4); // delta the other way
    m.trace
}

/// The Tardis lease lifecycle, end to end: a read lease is granted
/// with data, a write duel on a second page drags the reader's program
/// timestamp past the lease horizon (expiry — a purely local event,
/// no message), the re-read is answered by a data-free `TsRenew`, and
/// a subsequent write upgrades the current-version holder in place at
/// a bumped `wts`. Short lease (2) so two duel rounds are enough.
fn tardis_renewal() -> Vec<TraceEvent> {
    let cfg = ProtocolConfig { ts_lease: 2, ..ProtocolConfig::tardis() };
    let mut m = Mini::new(2, cfg);
    let seg = m.create_segment(0, 2);
    // Site 1 leases page 0 (TsRead → TsReadData).
    m.acquire_on(1, 1, seg, PageNum(0), Access::Read);
    // Each write fault on page 1 serializes past that page's leases and
    // advances site 1's program timestamp; the home's interleaved reads
    // force every write back through the wire.
    for _ in 0..4 {
        m.acquire_on(1, 1, seg, PageNum(1), Access::Write);
        m.acquire_on(0, 1, seg, PageNum(1), Access::Read);
    }
    // The page-0 lease has expired; the version has not moved, so the
    // re-read renews without data.
    m.acquire_on(1, 1, seg, PageNum(0), Access::Read);
    // The renewed holder writes: current version, in-place exclusive
    // grant at the bumped write timestamp.
    m.acquire_on(1, 1, seg, PageNum(0), Access::Write);
    m.trace
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden").join(name)
}

fn assert_matches_golden(name: &str, trace: &[TraceEvent]) {
    // Whatever we pin must satisfy the offline checker: the golden is
    // also a checker fixture.
    let report = check(trace);
    assert!(
        report.violations.is_empty(),
        "golden trace is incoherent: {:?}",
        report.violations
    );

    let got: String = trace.iter().map(|e| event_to_json(e) + "\n").collect();
    let path = golden_path(name);
    if std::env::var_os("MIRAGE_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden {} ({e}); run with MIRAGE_BLESS=1 to create it", path.display())
    });
    if got != want {
        // Line-by-line diff beats one giant assert_eq dump.
        for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
            assert_eq!(g, w, "golden {name} diverges at line {}", i + 1);
        }
        assert_eq!(
            got.lines().count(),
            want.lines().count(),
            "golden {name} has a different number of events"
        );
    }
}

#[test]
fn ping_pong_matches_golden() {
    assert_matches_golden("ping_pong.jsonl", &ping_pong());
}

#[test]
fn upgrade_downgrade_matches_golden() {
    assert_matches_golden("upgrade_downgrade.jsonl", &upgrade_downgrade());
}

#[test]
fn library_handoff_matches_golden() {
    assert_matches_golden("library_handoff.jsonl", &library_handoff());
}

#[test]
fn delta_grant_matches_golden() {
    let trace = delta_grant();
    // The scenario must actually reach the delta steady state in both
    // directions, or the golden pins the wrong flow.
    let count = |k: mirage_trace::TraceKind| trace.iter().filter(|e| e.kind == k).count();
    assert!(count(mirage_trace::TraceKind::DeltaGrantSent) >= 2, "no delta steady state");
    assert_eq!(
        count(mirage_trace::TraceKind::DeltaGrantSent),
        count(mirage_trace::TraceKind::DeltaPatched),
        "every delta sent must be patched in this loss-free flow"
    );
    assert_matches_golden("delta_grant.jsonl", &trace);
}

#[test]
fn tardis_renewal_matches_golden() {
    let trace = tardis_renewal();
    // The scenario must traverse the full lease lifecycle, or the
    // golden pins the wrong flow.
    let count = |k: mirage_trace::TraceKind| trace.iter().filter(|e| e.kind == k).count();
    assert!(count(mirage_trace::TraceKind::TsLeaseExpired) >= 1, "no lease expiry");
    assert!(count(mirage_trace::TraceKind::TsRenewGranted) >= 1, "no data-free renewal");
    assert!(count(mirage_trace::TraceKind::TsWriteGranted) >= 1, "no write bump");
    // A timestamp golden must satisfy the timestamp-ordering oracle
    // before it can be blessed (the structural checker runs inside
    // `assert_matches_golden` for every golden).
    let report = mirage_trace::check_timestamps(&trace);
    assert!(
        report.violations.is_empty(),
        "golden trace violates timestamp ordering: {:?}",
        report.violations
    );
    assert_matches_golden("tardis_renewal.jsonl", &trace);
}

/// The golden flows are deterministic: two runs trace identically.
#[test]
fn golden_flows_are_deterministic() {
    assert_eq!(ping_pong(), ping_pong());
    assert_eq!(upgrade_downgrade(), upgrade_downgrade());
    assert_eq!(library_handoff(), library_handoff());
    assert_eq!(delta_grant(), delta_grant());
    assert_eq!(tardis_renewal(), tardis_renewal());
}
