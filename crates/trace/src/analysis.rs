//! Reference-string analyses: page heat and inter-site sharing.

use std::collections::HashMap;

use mirage_types::{
    Access,
    PageNum,
    SegmentId,
    SiteId,
};

use crate::log::RefLog;

/// Per-page request counts — which pages are hot spots (§8.0 discusses
/// separating hot-spot pages or giving them their own Δ).
#[derive(Clone, Debug, Default)]
pub struct PageHeat {
    counts: HashMap<(SegmentId, PageNum), (u64, u64)>,
}

impl PageHeat {
    /// Builds heat statistics from a log.
    pub fn from_log(log: &RefLog) -> Self {
        let mut counts: HashMap<(SegmentId, PageNum), (u64, u64)> = HashMap::new();
        for e in log.entries() {
            let c = counts.entry((e.seg, e.page)).or_default();
            match e.access {
                Access::Read => c.0 += 1,
                Access::Write => c.1 += 1,
            }
        }
        Self { counts }
    }

    /// (reads, writes) for a page.
    pub fn page(&self, seg: SegmentId, page: PageNum) -> (u64, u64) {
        self.counts.get(&(seg, page)).copied().unwrap_or((0, 0))
    }

    /// Pages ranked by total requests, hottest first.
    pub fn hottest(&self) -> Vec<((SegmentId, PageNum), u64)> {
        let mut v: Vec<_> = self.counts.iter().map(|(&k, &(r, w))| (k, r + w)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Suggests pages whose request mix looks like the worst-case
    /// application: heavily written and contended. These are the §8.0
    /// hot-spot candidates for a dedicated (small) Δ or a separate
    /// segment.
    pub fn hot_spot_candidates(&self, min_requests: u64) -> Vec<(SegmentId, PageNum)> {
        let mut v: Vec<_> = self
            .counts
            .iter()
            .filter(|(_, &(r, w))| r + w >= min_requests && w * 2 >= r)
            .map(|(&k, _)| k)
            .collect();
        v.sort();
        v
    }
}

/// Which sites request which pages — the raw material for placement and
/// migration decisions.
#[derive(Clone, Debug, Default)]
pub struct SharingMatrix {
    counts: HashMap<(SegmentId, PageNum, SiteId), u64>,
}

impl SharingMatrix {
    /// Builds the matrix from a log.
    pub fn from_log(log: &RefLog) -> Self {
        let mut counts: HashMap<(SegmentId, PageNum, SiteId), u64> = HashMap::new();
        for e in log.entries() {
            *counts.entry((e.seg, e.page, e.pid.site)).or_default() += 1;
        }
        Self { counts }
    }

    /// Requests for a page from a given site.
    pub fn requests(&self, seg: SegmentId, page: PageNum, site: SiteId) -> u64 {
        self.counts.get(&(seg, page, site)).copied().unwrap_or(0)
    }

    /// Number of distinct sites that requested a page.
    pub fn sharers(&self, seg: SegmentId, page: PageNum) -> usize {
        self.counts.keys().filter(|&&(s, p, _)| s == seg && p == page).count()
    }

    /// The site that requested a page most often, if any.
    pub fn dominant_site(&self, seg: SegmentId, page: PageNum) -> Option<SiteId> {
        self.counts
            .iter()
            .filter(|(&(s, p, _), _)| s == seg && p == page)
            .max_by_key(|(&(_, _, site), &n)| (n, core::cmp::Reverse(site)))
            .map(|(&(_, _, site), _)| site)
    }
}

#[cfg(test)]
mod tests {
    use mirage_types::{
        Pid,
        SimTime,
    };

    use super::*;
    use crate::log::Entry;

    fn seg() -> SegmentId {
        SegmentId::new(SiteId(0), 1)
    }

    fn log_with(entries: &[(u32, u16, Access)]) -> RefLog {
        let mut l = RefLog::new();
        for (i, &(page, site, access)) in entries.iter().enumerate() {
            l.record(Entry {
                seg: seg(),
                page: PageNum(page),
                at: SimTime::from_millis(i as u64),
                pid: Pid::new(SiteId(site), 1),
                access,
            });
        }
        l
    }

    #[test]
    fn heat_counts_reads_and_writes() {
        let l = log_with(&[
            (0, 1, Access::Read),
            (0, 2, Access::Write),
            (0, 2, Access::Write),
            (1, 1, Access::Read),
        ]);
        let h = PageHeat::from_log(&l);
        assert_eq!(h.page(seg(), PageNum(0)), (1, 2));
        assert_eq!(h.page(seg(), PageNum(1)), (1, 0));
        assert_eq!(h.hottest()[0].0, (seg(), PageNum(0)));
    }

    #[test]
    fn hot_spot_candidates_require_write_share() {
        let l = log_with(&[
            // Page 0: write-heavy (candidate).
            (0, 1, Access::Write),
            (0, 2, Access::Write),
            (0, 1, Access::Read),
            // Page 1: read-mostly (not a candidate).
            (1, 1, Access::Read),
            (1, 2, Access::Read),
            (1, 1, Access::Read),
            (1, 2, Access::Write),
        ]);
        let h = PageHeat::from_log(&l);
        assert_eq!(h.hot_spot_candidates(3), vec![(seg(), PageNum(0))]);
    }

    #[test]
    fn sharing_matrix_identifies_dominant_site() {
        let l = log_with(&[(0, 1, Access::Read), (0, 2, Access::Read), (0, 2, Access::Write)]);
        let m = SharingMatrix::from_log(&l);
        assert_eq!(m.requests(seg(), PageNum(0), SiteId(2)), 2);
        assert_eq!(m.sharers(seg(), PageNum(0)), 2);
        assert_eq!(m.dominant_site(seg(), PageNum(0)), Some(SiteId(2)));
        assert_eq!(m.dominant_site(seg(), PageNum(9)), None);
    }
}
