//! The automatic process-migration advisor §9 envisions.
//!
//! A process that repeatedly requests pages whose traffic is dominated
//! by another site would fault less if it ran *there*. The advisor
//! scores each (process, site) pair by the requests the process made for
//! pages and recommends relocation when another site would have served
//! most of them locally.

use std::collections::{
    BTreeMap,
    HashMap,
};

use mirage_types::{
    Pid,
    SegmentId,
    SiteId,
};

use crate::log::{
    Entry,
    RefLog,
};

/// A relocation recommendation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MigrationAdvice {
    /// The process that should move.
    pub pid: Pid,
    /// Where it should move to.
    pub to: SiteId,
    /// Requests it made that conflicted with that site's processes.
    pub conflicting_requests: u64,
}

/// Analyses a reference log for migration opportunities.
#[derive(Clone, Debug)]
pub struct MigrationAdvisor {
    /// Minimum conflicting requests before advising a move.
    pub threshold: u64,
}

impl Default for MigrationAdvisor {
    fn default() -> Self {
        Self { threshold: 8 }
    }
}

impl MigrationAdvisor {
    /// Builds an advisor with the given sensitivity.
    pub fn new(threshold: u64) -> Self {
        Self { threshold }
    }

    /// Produces advice: for each process, count its requests for pages
    /// that *other* sites also requested; if one partner site dominates,
    /// colocating with it would convert those remote faults into local
    /// sharing (colocated processes share pages through the ordinary
    /// System V mechanisms, §6.0).
    pub fn advise(&self, log: &RefLog) -> Vec<MigrationAdvice> {
        // (pid, partner site) -> number of page requests pid made for
        // pages the partner site also requested.
        let mut page_sites: HashMap<_, Vec<SiteId>> = HashMap::new();
        for e in log.entries() {
            let sites = page_sites.entry((e.seg, e.page)).or_default();
            if !sites.contains(&e.pid.site) {
                sites.push(e.pid.site);
            }
        }
        let mut affinity: HashMap<(Pid, SiteId), u64> = HashMap::new();
        for e in log.entries() {
            if let Some(sites) = page_sites.get(&(e.seg, e.page)) {
                for &s in sites {
                    if s != e.pid.site {
                        *affinity.entry((e.pid, s)).or_default() += 1;
                    }
                }
            }
        }
        let mut best: HashMap<Pid, (SiteId, u64)> = HashMap::new();
        for (&(pid, site), &n) in &affinity {
            let e = best.entry(pid).or_insert((site, 0));
            if n > e.1 || (n == e.1 && site < e.0) {
                *e = (site, n);
            }
        }
        let mut advice: Vec<_> = best
            .into_iter()
            .filter(|&(_, (_, n))| n >= self.threshold)
            .map(|(pid, (to, n))| MigrationAdvice { pid, to, conflicting_requests: n })
            .collect();
        advice.sort_by_key(|a| (core::cmp::Reverse(a.conflicting_requests), a.pid));
        advice
    }
}

/// Where a segment's *library role* should live, judged from a window
/// of reference-log entries.
///
/// Where [`MigrationAdvisor`] recommends moving a *process* toward the
/// data, this advisor recommends moving the *library* toward its
/// traffic: the site whose processes dominate the segment's request
/// stream would serve those faults locally (and pay no request/serve
/// message pair) if it held the role. Drives the simulator's
/// `PlacementPolicy::Advised` live placement loop.
#[derive(Clone, Debug)]
pub struct PlacementAdvisor {
    /// Minimum requests a site must have contributed within the window
    /// before the advisor speaks up — placement churn on a trickle of
    /// references costs more (one handoff message per move, plus a
    /// redirect round at every site) than it saves.
    pub min_requests: u64,
    /// Pages per library shard: the granularity at which the role can
    /// move. 0 (the default) scores whole segments — one shard each,
    /// matching the unsharded protocol. Non-zero buckets each segment's
    /// request stream by page range, so two hot ranges of one segment
    /// can be advised toward *different* sites.
    pub shard_pages: u32,
}

/// One library-shard placement recommendation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlacementAdvice {
    /// The segment whose library shard should move.
    pub seg: SegmentId,
    /// Which page-range shard of the role should move (always 0 when
    /// the advisor scores whole segments).
    pub shard: u32,
    /// The site that dominated the shard's request stream.
    pub to: SiteId,
    /// Requests that site contributed within the window.
    pub requests: u64,
}

impl Default for PlacementAdvisor {
    fn default() -> Self {
        Self { min_requests: 8, shard_pages: 0 }
    }
}

impl PlacementAdvisor {
    /// Builds an advisor with the given sensitivity, scoring whole
    /// segments (one shard each).
    pub fn new(min_requests: u64) -> Self {
        Self { min_requests, shard_pages: 0 }
    }

    /// Builds a shard-aware advisor: request streams are bucketed into
    /// `shard_pages`-page ranges and each range is scored independently.
    pub fn sharded(min_requests: u64, shard_pages: u32) -> Self {
        Self { min_requests, shard_pages }
    }

    /// Scores each library shard's request stream by requester site and
    /// recommends the dominant one (ties break toward the lower site
    /// id, so the output is deterministic for any entry order).
    /// Shards whose leader is below `min_requests` are omitted.
    pub fn advise(&self, entries: &[Entry]) -> Vec<PlacementAdvice> {
        let shard_of = |page: mirage_types::PageNum| -> u32 {
            page.0.checked_div(self.shard_pages).unwrap_or(0)
        };
        let mut counts: BTreeMap<(SegmentId, u32, SiteId), u64> = BTreeMap::new();
        for e in entries {
            *counts.entry((e.seg, shard_of(e.page), e.pid.site)).or_default() += 1;
        }
        let mut best: BTreeMap<(SegmentId, u32), (SiteId, u64)> = BTreeMap::new();
        for (&(seg, shard, site), &n) in &counts {
            let e = best.entry((seg, shard)).or_insert((site, n));
            // BTreeMap iteration is (seg, shard, site)-ordered, so a
            // strict `>` keeps the first (lowest-id) site on ties.
            if n > e.1 {
                *e = (site, n);
            }
        }
        best.into_iter()
            .filter(|&(_, (_, n))| n >= self.min_requests)
            .map(|((seg, shard), (to, n))| PlacementAdvice { seg, shard, to, requests: n })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use mirage_types::{
        Access,
        PageNum,
        SegmentId,
        SimTime,
    };

    use super::*;
    use crate::log::Entry;

    fn entry(page: u32, site: u16, i: u64) -> Entry {
        Entry {
            seg: SegmentId::new(SiteId(0), 1),
            page: PageNum(page),
            at: SimTime::from_millis(i),
            pid: Pid::new(SiteId(site), 1),
            access: Access::Write,
        }
    }

    #[test]
    fn advises_moving_heavy_cross_site_sharer() {
        let mut l = RefLog::new();
        // Site 1's process and site 2's process fight over page 0.
        for i in 0..10 {
            l.record(entry(0, 1, 2 * i));
            l.record(entry(0, 2, 2 * i + 1));
        }
        let advice = MigrationAdvisor::new(5).advise(&l);
        assert_eq!(advice.len(), 2, "both processes see the conflict");
        assert!(advice.iter().any(|a| a.pid.site == SiteId(1) && a.to == SiteId(2)));
        assert!(advice.iter().any(|a| a.pid.site == SiteId(2) && a.to == SiteId(1)));
    }

    #[test]
    fn no_advice_without_conflict() {
        let mut l = RefLog::new();
        for i in 0..10 {
            l.record(entry(0, 1, i)); // only one site requests page 0
            l.record(entry(1, 2, 100 + i)); // only site 2 requests page 1
        }
        assert!(MigrationAdvisor::default().advise(&l).is_empty());
    }

    #[test]
    fn placement_follows_the_dominant_requester() {
        let entries: Vec<Entry> =
            (0..12).map(|i| entry(0, if i < 9 { 3 } else { 1 }, i)).collect();
        let advice = PlacementAdvisor::new(5).advise(&entries);
        assert_eq!(advice.len(), 1);
        assert_eq!(advice[0].to, SiteId(3));
        assert_eq!(advice[0].requests, 9);
    }

    #[test]
    fn placement_ties_break_to_lower_site() {
        let entries: Vec<Entry> =
            (0..8).map(|i| entry(0, if i % 2 == 0 { 4 } else { 2 }, i)).collect();
        let advice = PlacementAdvisor::new(1).advise(&entries);
        assert_eq!(advice[0].to, SiteId(2));
    }

    #[test]
    fn placement_floor_suppresses_trickle() {
        let entries: Vec<Entry> = (0..3).map(|i| entry(0, 1, i)).collect();
        assert!(PlacementAdvisor::default().advise(&entries).is_empty());
    }

    #[test]
    fn threshold_suppresses_noise() {
        let mut l = RefLog::new();
        l.record(entry(0, 1, 0));
        l.record(entry(0, 2, 1));
        assert!(MigrationAdvisor::new(5).advise(&l).is_empty());
        assert_eq!(MigrationAdvisor::new(1).advise(&l).len(), 2);
    }
}
