//! The library-site reference log.

use mirage_types::{
    Access,
    PageNum,
    Pid,
    SegmentId,
    SimTime,
};

/// One logged page request (§9: memory location, timestamp, requester).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Entry {
    /// The segment requested.
    pub seg: SegmentId,
    /// The page requested (the "memory location" at page granularity).
    pub page: PageNum,
    /// When the library processed the request.
    pub at: SimTime,
    /// The requesting process.
    pub pid: Pid,
    /// Read or write request.
    pub access: Access,
}

/// An append-only reference log kept at a library site.
///
/// Requests from sites holding valid copies never reach the library, so
/// — as the paper notes — they are inherently absent from the log.
#[derive(Clone, Debug, Default)]
pub struct RefLog {
    entries: Vec<Entry>,
}

impl RefLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an entry.
    pub fn record(&mut self, entry: Entry) {
        self.entries.push(entry);
    }

    /// All entries, in arrival order.
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries within a time window.
    pub fn between(&self, from: SimTime, to: SimTime) -> impl Iterator<Item = &Entry> {
        self.entries.iter().filter(move |e| e.at >= from && e.at < to)
    }

    /// Entries for one page.
    pub fn for_page(&self, seg: SegmentId, page: PageNum) -> impl Iterator<Item = &Entry> {
        self.entries.iter().filter(move |e| e.seg == seg && e.page == page)
    }
}

#[cfg(test)]
mod tests {
    use mirage_types::SiteId;

    use super::*;

    fn entry(page: u32, ms: u64, site: u16, access: Access) -> Entry {
        Entry {
            seg: SegmentId::new(SiteId(0), 1),
            page: PageNum(page),
            at: SimTime::from_millis(ms),
            pid: Pid::new(SiteId(site), 1),
            access,
        }
    }

    #[test]
    fn log_appends_in_order() {
        let mut l = RefLog::new();
        assert!(l.is_empty());
        l.record(entry(0, 1, 1, Access::Read));
        l.record(entry(1, 2, 2, Access::Write));
        assert_eq!(l.len(), 2);
        assert_eq!(l.entries()[0].page, PageNum(0));
    }

    #[test]
    fn time_window_filter() {
        let mut l = RefLog::new();
        for ms in [1, 5, 9, 15] {
            l.record(entry(0, ms, 1, Access::Read));
        }
        let n = l.between(SimTime::from_millis(5), SimTime::from_millis(15)).count();
        assert_eq!(n, 2, "window is half-open [from, to)");
    }

    #[test]
    fn page_filter() {
        let mut l = RefLog::new();
        l.record(entry(0, 1, 1, Access::Read));
        l.record(entry(1, 2, 1, Access::Read));
        l.record(entry(0, 3, 2, Access::Write));
        let seg = SegmentId::new(SiteId(0), 1);
        assert_eq!(l.for_page(seg, PageNum(0)).count(), 2);
        assert_eq!(l.for_page(seg, PageNum(1)).count(), 1);
    }
}
