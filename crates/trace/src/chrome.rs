//! Chrome trace-event (`chrome://tracing` / Perfetto) export.
//!
//! Maps the protocol trace onto the Trace Event JSON format: each
//! **site becomes a process** (`pid`), each **span becomes a complete
//! slice** (`"ph":"X"`) on the site's span track, and every individual
//! event is also emitted as an instant (`"ph":"i"`) on the site's
//! event track, so a run can be scrubbed on a timeline with both the
//! demand lifecycles and the raw event stream visible.
//!
//! Timestamps are microseconds (the format's unit) with nanosecond
//! precision kept as a decimal fraction. The encoder is hand-written
//! and [`validate`] is a minimal std-only JSON parser used by tests
//! and the CI trace job to prove the output parses.

use std::collections::BTreeMap;

use crate::event::{
    SpanId,
    TraceEvent,
    TraceKind,
};

/// Track (thread) ids within each site's process.
const TID_SPANS: u32 = 0;
const TID_EVENTS: u32 = 1;

fn ts_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A short human label for the span opened by `kind`.
fn span_role(kind: TraceKind) -> &'static str {
    match kind {
        TraceKind::FaultTaken | TraceKind::RequestSent => "fetch",
        TraceKind::RequestQueued | TraceKind::ServeStart | TraceKind::AddReadersSent => "serve",
        _ => "round",
    }
}

/// Serializes a trace as Chrome trace-event JSON.
///
/// Events need not be time-sorted; the exporter sorts slices by start
/// time itself (viewers require monotonic "X" events per track).
pub fn export(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 160 + 256);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut push = |out: &mut String, entry: String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push('\n');
        out.push_str(&entry);
    };

    // Process metadata: name each site.
    let mut sites: Vec<u16> = events.iter().map(|e| e.site.0).collect();
    sites.sort_unstable();
    sites.dedup();
    for site in &sites {
        push(
            &mut out,
            format!(
                "{{\"ph\":\"M\",\"pid\":{site},\"tid\":0,\"name\":\"process_name\",\
                 \"args\":{{\"name\":\"site {site}\"}}}}"
            ),
        );
        for (tid, name) in [(TID_SPANS, "spans"), (TID_EVENTS, "events")] {
            push(
                &mut out,
                format!(
                    "{{\"ph\":\"M\",\"pid\":{site},\"tid\":{tid},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":\"{name}\"}}}}"
                ),
            );
        }
    }

    // Spans: first/last event time per (site, span) becomes one slice.
    struct Span {
        site: u16,
        start: u64,
        end: u64,
        label: String,
    }
    let mut spans: BTreeMap<SpanId, Span> = BTreeMap::new();
    for ev in events {
        if ev.span.is_none() {
            continue;
        }
        let span = spans.entry(ev.span).or_insert_with(|| {
            let subject = match ev.subject {
                Some((seg, page)) => {
                    format!(" seg{}@{}.p{}", seg.serial, seg.library.0, page.0)
                }
                None => String::new(),
            };
            Span {
                site: ev.site.0,
                start: ev.at.0,
                end: ev.at.0,
                label: format!("{}{}", span_role(ev.kind), subject),
            }
        });
        span.start = span.start.min(ev.at.0);
        span.end = span.end.max(ev.at.0);
    }
    let mut slices: Vec<(&SpanId, &Span)> = spans.iter().collect();
    slices.sort_by_key(|(id, s)| (s.site, s.start, id.0));
    for (id, s) in slices {
        // Zero-length spans still get a sliver so they are visible.
        let dur = (s.end - s.start).max(1);
        push(
            &mut out,
            format!(
                "{{\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{},\"name\":\"{}\",\
                 \"args\":{{\"span\":{}}}}}",
                s.site,
                TID_SPANS,
                ts_us(s.start),
                ts_us(dur),
                escape(&s.label),
                id.0
            ),
        );
    }

    // Instants: every event on its site's event track.
    for ev in events {
        let mut args = String::new();
        if let Some((seg, page)) = ev.subject {
            args.push_str(&format!(
                "\"page\":\"seg{}@{}.p{}\",",
                seg.serial, seg.library.0, page.0
            ));
        }
        if let Some(peer) = ev.peer {
            args.push_str(&format!("\"peer\":{},", peer.0));
        }
        if let Some(msg) = ev.msg {
            args.push_str(&format!("\"msg\":\"{}\",", msg.name()));
        }
        if !ev.span.is_none() {
            args.push_str(&format!("\"span\":{},", ev.span.0));
        }
        if ev.serial != 0 {
            args.push_str(&format!("\"serial\":{},", ev.serial));
        }
        args.push_str(&format!("\"detail\":{}", ev.detail));
        push(
            &mut out,
            format!(
                "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{},\"tid\":{},\"ts\":{},\"name\":\"{}\",\
                 \"args\":{{{}}}}}",
                ev.site.0,
                TID_EVENTS,
                ts_us(ev.at.0),
                ev.kind.name(),
                args
            ),
        );
    }

    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Validates that `text` is well-formed JSON whose top level is an
/// object with a `traceEvents` array; returns the number of entries.
///
/// This is a deliberately small recursive-descent parser (the
/// workspace takes no serde dependency); it accepts exactly the JSON
/// grammar, which is enough to prove an export will load in a viewer.
pub fn validate(text: &str) -> Result<usize, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let count = p.top_level()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(count)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    /// Parses the top-level object, counting `traceEvents` entries.
    fn top_level(&mut self) -> Result<usize, String> {
        self.expect(b'{')?;
        let mut count: Option<usize> = None;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
        } else {
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                if key == "traceEvents" {
                    count = Some(self.array_count()?);
                } else {
                    self.value()?;
                }
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        break;
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
                }
            }
        }
        count.ok_or_else(|| "no traceEvents array".to_string())
    }

    /// Parses an array, returning its element count.
    fn array_count(&mut self) -> Result<usize, String> {
        self.expect(b'[')?;
        self.skip_ws();
        let mut n = 0;
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(0);
        }
        loop {
            self.skip_ws();
            self.value()?;
            n += 1;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(n);
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => {
                self.pos += 1;
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(());
                }
                loop {
                    self.skip_ws();
                    self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    self.value()?;
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(());
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
                    }
                }
            }
            Some(b'[') => {
                self.array_count()?;
                Ok(())
            }
            Some(b'"') => {
                self.string()?;
                Ok(())
            }
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let start = p.pos;
            while matches!(p.peek(), Some(b'0'..=b'9')) {
                p.pos += 1;
            }
            p.pos > start
        };
        if !digits(self) {
            return Err(format!("bad number at byte {}", self.pos));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(format!("bad fraction at byte {}", self.pos));
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(format!("bad exponent at byte {}", self.pos));
            }
        }
        Ok(())
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            let hex =
                                std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                    .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control byte in string at {}", self.pos));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so safe).
                    let s = &self.bytes[self.pos..];
                    let ch_len = match s[0] {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    out.push_str(std::str::from_utf8(&s[..ch_len]).unwrap_or("\u{fffd}"));
                    self.pos += ch_len;
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use mirage_types::{
        PageNum,
        SegmentId,
        SimTime,
        SiteId,
    };

    use super::*;
    use crate::event::SpanId;

    #[test]
    fn export_of_empty_trace_validates() {
        let json = export(&[]);
        assert_eq!(validate(&json), Ok(0));
    }

    #[test]
    fn export_validates_and_counts_entries() {
        let mut a = TraceEvent::new(SimTime(1_000), SiteId(0), TraceKind::RequestSent);
        a.span = SpanId::new(SiteId(0), 1);
        a.subject = Some((SegmentId::new(SiteId(1), 1), PageNum(0)));
        let mut b = TraceEvent::new(SimTime(5_500), SiteId(0), TraceKind::Installed);
        b.span = a.span;
        b.subject = a.subject;
        let json = export(&[a, b]);
        // 1 process + 2 thread metadata entries, 1 span slice, 2 instants.
        assert_eq!(validate(&json), Ok(6));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1.000"));
        assert!(json.contains("\"dur\":4.500"));
    }

    #[test]
    fn validator_rejects_malformed_json() {
        assert!(validate("{\"traceEvents\":[}").is_err());
        assert!(validate("{\"traceEvents\":[],").is_err());
        assert!(validate("{}").is_err(), "missing traceEvents must fail");
        assert!(validate("[1,2]").is_err(), "top level must be an object");
        assert!(validate("{\"traceEvents\":[{\"a\":1e}]}").is_err());
    }

    #[test]
    fn validator_accepts_escapes_and_numbers() {
        let json = "{\"traceEvents\":[{\"s\":\"a\\u0041\\n\",\"n\":-1.5e+3,\"b\":true}]}";
        assert_eq!(validate(json), Ok(1));
    }
}
