//! Reference-string logging and analysis (paper §9).
//!
//! "Mirage provides a facility for logging all page requests at the
//! library site. Each log entry contains the memory location, a
//! timestamp, and the process identifier of the requester. We envision
//! that a user-level process could analyze these reference strings as
//! the basis for an automatic process migration facility or for later
//! reference string analysis. Note, however, that reference strings from
//! sites with valid page copies are not recorded."
//!
//! This crate provides the log store and the two envisioned analyses:
//!
//! * [`analysis`] — page heat and inter-site sharing statistics;
//! * [`migrate`] — a migration advisor that recommends moving a process
//!   to the site its pages most often come from.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis;
pub mod log;
pub mod migrate;

pub use analysis::{
    PageHeat,
    SharingMatrix,
};
pub use log::{
    Entry,
    RefLog,
};
pub use migrate::{
    MigrationAdvice,
    MigrationAdvisor,
};
