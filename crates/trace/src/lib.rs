//! Reference-string logging, protocol tracing, and offline analysis.
//!
//! The crate began as the paper's §9 facility: "Mirage provides a
//! facility for logging all page requests at the library site. Each log
//! entry contains the memory location, a timestamp, and the process
//! identifier of the requester. We envision that a user-level process
//! could analyze these reference strings as the basis for an automatic
//! process migration facility or for later reference string analysis."
//!
//! On top of that it now carries the protocol observability layer:
//!
//! * [`analysis`] — page heat and inter-site sharing statistics;
//! * [`migrate`] — a migration advisor that recommends moving a process
//!   to the site its pages most often come from;
//! * [`event`] — the structured protocol event trace ([`TraceEvent`],
//!   causal [`SpanId`]s);
//! * [`sink`] — [`TraceSink`] backends (vector, ring buffer, JSONL);
//! * [`metrics`] — a plain-std metrics [`Registry`] with deterministic
//!   merge and rendering;
//! * [`chrome`] — Chrome trace-event JSON export and validation;
//! * [`check()`] — the offline trace-driven coherence checker, an
//!   independent oracle over the recorded event stream.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis;
pub mod check;
pub mod chrome;
pub mod event;
pub mod log;
pub mod metrics;
pub mod migrate;
pub mod sink;

pub use analysis::{
    PageHeat,
    SharingMatrix,
};
pub use check::{
    check,
    check_timestamps,
    CheckReport,
};
pub use event::{
    SpanId,
    TraceEvent,
    TraceKind,
};
pub use log::{
    Entry,
    RefLog,
};
pub use metrics::{
    from_trace,
    Histogram,
    LatencyPhase,
    LatencyRecord,
    LatencySet,
    Registry,
};
pub use migrate::{
    MigrationAdvice,
    MigrationAdvisor,
    PlacementAdvice,
    PlacementAdvisor,
};
pub use sink::{
    event_to_json,
    JsonlSink,
    RingSink,
    TraceSink,
    VecSink,
};
