//! Trace sinks: where emitted [`TraceEvent`]s go.
//!
//! The protocol engine and the simulator hand every event to a
//! [`TraceSink`]. Three backends cover the use cases:
//!
//! * [`VecSink`] — keep everything, in order (tests, offline checking,
//!   Chrome export);
//! * [`RingSink`] — keep the last *N* events in a fixed ring (flight
//!   recorder for long runs: bounded memory, the tail survives);
//! * [`JsonlSink`] — stream each event as one JSON line to any
//!   `io::Write` (feeds external tools without buffering the run).

use std::io;

use crate::event::TraceEvent;

/// A consumer of protocol trace events.
///
/// Implementations must be order-preserving: events arrive in emission
/// order (which, within one simulated timestamp, is causal order).
pub trait TraceSink {
    /// Records one event.
    fn record(&mut self, ev: &TraceEvent);

    /// Flushes any buffered output (no-op for in-memory sinks).
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// An unbounded in-memory sink: every event, in order.
#[derive(Debug, Default)]
pub struct VecSink {
    /// The recorded events in emission order.
    pub events: Vec<TraceEvent>,
}

impl VecSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the sink, returning the recorded events.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }
}

impl TraceSink for VecSink {
    fn record(&mut self, ev: &TraceEvent) {
        self.events.push(*ev);
    }
}

/// A fixed-capacity ring buffer keeping the most recent events.
#[derive(Debug)]
pub struct RingSink {
    buf: Vec<TraceEvent>,
    capacity: usize,
    /// Next write position (wraps).
    head: usize,
    /// Total events ever recorded (not capped at capacity).
    recorded: u64,
}

impl RingSink {
    /// Creates a ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self { buf: Vec::with_capacity(capacity), capacity, head: 0, recorded: 0 }
    }

    /// Total events recorded over the sink's lifetime, including those
    /// that have since been overwritten.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        if self.buf.len() < self.capacity {
            self.buf.clone()
        } else {
            let mut out = Vec::with_capacity(self.capacity);
            out.extend_from_slice(&self.buf[self.head..]);
            out.extend_from_slice(&self.buf[..self.head]);
            out
        }
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, ev: &TraceEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(*ev);
        } else {
            self.buf[self.head] = *ev;
        }
        self.head = (self.head + 1) % self.capacity;
        self.recorded += 1;
    }
}

/// Streams each event as one JSON object per line (JSON Lines).
///
/// The encoding is hand-written (the workspace is std-only); field
/// names and order are stable so downstream tooling can depend on
/// them. Write errors are remembered and surfaced by [`TraceSink::flush`]
/// rather than panicking mid-simulation.
pub struct JsonlSink<W: io::Write> {
    out: W,
    error: Option<io::Error>,
}

impl<W: io::Write> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> Self {
        Self { out, error: None }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

/// Encodes one event as a single-line JSON object.
pub fn event_to_json(ev: &TraceEvent) -> String {
    let mut s = String::with_capacity(160);
    s.push_str(&format!(
        "{{\"at\":{},\"site\":{},\"kind\":\"{}\"",
        ev.at.0,
        ev.site.0,
        ev.kind.name()
    ));
    if let Some((seg, page)) = ev.subject {
        s.push_str(&format!(
            ",\"seg\":\"{}@{}\",\"page\":{}",
            seg.serial, seg.library.0, page.0
        ));
    }
    if !ev.span.is_none() {
        s.push_str(&format!(",\"span\":{}", ev.span.0));
    }
    if let Some(peer) = ev.peer {
        s.push_str(&format!(",\"peer\":{}", peer.0));
    }
    if let Some(pid) = ev.pid {
        s.push_str(&format!(",\"pid\":\"{}.{}\"", pid.site.0, pid.local));
    }
    if let Some(access) = ev.access {
        s.push_str(&format!(",\"access\":\"{access:?}\""));
    }
    if let Some(msg) = ev.msg {
        s.push_str(&format!(",\"msg\":\"{}\"", msg.name()));
    }
    if ev.serial != 0 {
        s.push_str(&format!(",\"serial\":{}", ev.serial));
    }
    if ev.detail != 0 {
        s.push_str(&format!(",\"detail\":{}", ev.detail));
    }
    if ev.epoch != 0 {
        s.push_str(&format!(",\"epoch\":{}", ev.epoch));
    }
    s.push('}');
    s
}

impl<W: io::Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, ev: &TraceEvent) {
        if self.error.is_some() {
            return;
        }
        let line = event_to_json(ev);
        if let Err(e) =
            self.out.write_all(line.as_bytes()).and_then(|()| self.out.write_all(b"\n"))
        {
            self.error = Some(e);
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()
    }
}

#[cfg(test)]
mod tests {
    use mirage_types::{
        SimTime,
        SiteId,
    };

    use super::*;
    use crate::event::TraceKind;

    fn ev(at: u64) -> TraceEvent {
        TraceEvent::new(SimTime(at), SiteId(0), TraceKind::MsgSent)
    }

    #[test]
    fn ring_keeps_the_tail_in_order() {
        let mut ring = RingSink::new(3);
        for t in 0..5 {
            ring.record(&ev(t));
        }
        assert_eq!(ring.recorded(), 5);
        let kept: Vec<u64> = ring.events().iter().map(|e| e.at.0).collect();
        assert_eq!(kept, vec![2, 3, 4]);
    }

    #[test]
    fn ring_below_capacity_returns_everything() {
        let mut ring = RingSink::new(8);
        ring.record(&ev(1));
        ring.record(&ev(2));
        let kept: Vec<u64> = ring.events().iter().map(|e| e.at.0).collect();
        assert_eq!(kept, vec![1, 2]);
    }

    #[test]
    fn jsonl_writes_one_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&ev(7));
        sink.record(&ev(8));
        sink.flush().unwrap();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"at\":7,"));
        assert!(lines[0].ends_with('}'));
    }
}
