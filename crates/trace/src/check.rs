//! Offline trace-driven coherence checker: a second, independent
//! oracle.
//!
//! [`check`] replays the copy-state transitions recorded in a protocol
//! trace — grants installed, upgrades, downgrades, invalidations —
//! in happens-before order and asserts the Mirage invariants *from the
//! trace alone*, with no access to the simulator's page tables:
//!
//! * **single writer** — at no instant do two sites hold write access,
//!   and while a writer exists no other site holds any copy;
//! * **reader-set consistency** — a write install/upgrade may only
//!   happen once every other copy has been invalidated, and an upgrade
//!   requires a resident copy to promote;
//! * **Δ-window non-violation** — the clock site never gives up or
//!   downgrades its copy before `install_time + Δ` (§5.3); victims of
//!   an invalidation round are exempt because only the clock site's
//!   window protects the copy;
//! * **serve serialization** — the library never overlaps two serves
//!   for the same page;
//! * **sub-page patch fidelity** (delta-grant mode) — every page a
//!   receiver reconstructs by patching a delta grant hashes to exactly
//!   the content the granter served (`DeltaGrantSent.detail` vs
//!   `DeltaPatched.detail`), i.e. the patched page is byte-identical to
//!   what a full grant would have installed; a patch with no matching
//!   grant is a violation outright;
//! * **library-role integrity** (relocatable libraries) — handoff
//!   epochs for a *(segment, page-range shard)* are strictly monotone,
//!   and every serve is started by the site that holds that shard's
//!   role at that point in the activation history. Activation events
//!   carry the adopted range (anchor page in the subject, length in
//!   `detail`), so each shard's role is scoped to its own pages; pages
//!   of shards that never migrated stay with the creation site. The
//!   handoff forms the edge that links one epoch's open serve to its
//!   completion under the next: a serve frozen mid-flight at the old
//!   site legally reports `ServeDone` from the adopting site.
//!
//! Happens-before is rebuilt from the simulated timestamps plus
//! emission order for ties: the trace is recorded by a single-threaded
//! world, so same-timestamp events appear in causal (delivery) order
//! and a stable sort by time is a valid linear extension.
//!
//! The checker is deliberately independent of `mirage-sim`'s
//! `check_page` (which inspects live page tables at quiescence): this
//! one sees every intermediate state, so a transient double-writer that
//! heals before the end of the run is still caught.

use std::collections::BTreeMap;

use mirage_types::{
    Access,
    PageNum,
    SegmentId,
    SimTime,
    TICK,
};

use crate::event::{
    TraceEvent,
    TraceKind,
};

/// One site's copy of a page, as reconstructed from the trace.
#[derive(Clone, Copy, Debug)]
struct CopyState {
    access: Access,
    /// When the copy was installed, if the trace recorded it. The
    /// initial copy at the library site predates the trace, so its
    /// window cannot be checked (`None`).
    installed_at: Option<SimTime>,
    /// Δ window in ticks at install time.
    window_ticks: Option<u64>,
}

#[derive(Default)]
struct PageTrack {
    /// site index -> copy.
    copies: BTreeMap<u16, CopyState>,
    /// Serial of the serve currently open at the library.
    serving: Option<u32>,
    /// site -> serial of a write upgrade the library has committed
    /// (`UpgradeSent`) that the site has not yet observed. With lossy
    /// delivery the grant may never arrive, but the serve order already
    /// counts the site as the writer — so a later Invalidate makes it
    /// downgrade a copy it still believes is read-only. Kept on the
    /// page (not the copy) and keyed by serial because trace time
    /// interleaves library commitments with lagging site-side installs
    /// from earlier serves.
    upgrades_in_flight: BTreeMap<u16, u32>,
    /// (granter, recipient, serial) -> content hash of the page a
    /// delta grant must reconstruct (`DeltaGrantSent.detail`).
    /// Retransmissions of the same retained grant re-announce the same
    /// target content, so overwriting is sound.
    delta_sent: BTreeMap<(u16, u16, u32), u64>,
    /// True once any event for the page has been seen.
    touched: bool,
}

/// The checker's verdict over one trace.
#[derive(Clone, Debug, Default)]
pub struct CheckReport {
    /// Human-readable invariant violations, in trace order.
    pub violations: Vec<String>,
    /// Number of events examined.
    pub events: usize,
    /// Number of distinct pages tracked.
    pub pages: usize,
}

impl CheckReport {
    /// True when no invariant was violated.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }
}

fn window_expiry(installed_at: SimTime, ticks: u64) -> SimTime {
    SimTime(installed_at.0 + ticks * TICK.0)
}

/// The library role for one page-range shard, reconstructed from
/// activation events. `len == 0` means "the rest of the segment" — the
/// unsharded whole-segment role, and the safe default before any
/// activation has been seen.
#[derive(Clone, Copy, Debug)]
struct ShardRole {
    site: u16,
    epoch: u32,
    len: u32,
}

/// Resolves which shard role covers `page`: the activation with the
/// greatest anchor at or below it whose range reaches the page. Pages
/// outside every adopted range still belong to the creation site at
/// epoch 0.
fn shard_role(
    libs: &BTreeMap<(SegmentId, u32), ShardRole>,
    seg: SegmentId,
    page: PageNum,
) -> ShardRole {
    let default = ShardRole { site: seg.library.0, epoch: 0, len: 0 };
    libs.range((seg, 0)..=(seg, page.0))
        .next_back()
        .map(
            |(&(_, anchor), &role)| {
                if role.len == 0 || page.0 < anchor + role.len {
                    role
                } else {
                    default
                }
            },
        )
        .unwrap_or(default)
}

/// Replays the trace and checks the coherence invariants.
///
/// The trace must be complete (e.g. from a `VecSink`); a truncated
/// ring-buffer trace would show copies appearing "from nowhere" and is
/// not a valid checker input. Events are stably sorted by simulated
/// time before replay, so callers may concatenate per-component
/// streams.
pub fn check(events: &[TraceEvent]) -> CheckReport {
    let mut order: Vec<&TraceEvent> = events.iter().collect();
    order.sort_by_key(|ev| ev.at);

    let mut pages: BTreeMap<(SegmentId, PageNum), PageTrack> = BTreeMap::new();
    // Per (segment, shard-anchor page): the site currently holding that
    // shard's library role, its epoch, and the adopted range length.
    // Anchors appear as shards migrate; unmigrated ranges default to
    // the segment's static creation-time address at epoch 0.
    let mut libs: BTreeMap<(SegmentId, u32), ShardRole> = BTreeMap::new();
    let mut report = CheckReport { events: events.len(), ..CheckReport::default() };

    for ev in order {
        let Some(subject) = ev.subject else { continue };
        if ev.kind == TraceKind::LibraryActivated {
            let anchor = subject.1 .0;
            let role = libs.entry((subject.0, anchor)).or_insert(ShardRole {
                site: subject.0.library.0,
                epoch: 0,
                len: 0,
            });
            if ev.epoch <= role.epoch {
                report.violations.push(format!(
                    "handoff epoch not monotone: activation at epoch {} after epoch {}: {ev}",
                    ev.epoch, role.epoch
                ));
            }
            *role = ShardRole { site: ev.site.0, epoch: ev.epoch, len: ev.detail as u32 };
            continue;
        }
        let track = pages.entry(subject).or_insert_with(|| {
            // The creating (library) site starts fully resident with
            // write access; its install predates the trace.
            let mut t = PageTrack::default();
            t.copies.insert(
                subject.0.library.0,
                CopyState { access: Access::Write, installed_at: None, window_ticks: None },
            );
            t
        });
        track.touched = true;
        let site = ev.site.0;
        let ctx = |msg: &str| format!("{msg}: {ev}");

        match ev.kind {
            TraceKind::Installed => {
                let access = ev.access.unwrap_or(Access::Read);
                if access.is_write() {
                    for (&other, copy) in &track.copies {
                        if other != site {
                            report.violations.push(ctx(&format!(
                                "write installed while site{other} still holds a \
                                 {:?} copy",
                                copy.access
                            )));
                        }
                    }
                } else if let Some((&w, _)) =
                    track.copies.iter().find(|(&s, c)| s != site && c.access.is_write())
                {
                    report
                        .violations
                        .push(ctx(&format!("read installed while site{w} holds write access")));
                }
                // An install from a serve at or after the committed
                // upgrade supersedes it (the write request was
                // re-served); an install from an *earlier* serve is
                // just lagging delivery and leaves it standing.
                if track.upgrades_in_flight.get(&site).is_some_and(|&u| ev.serial >= u) {
                    track.upgrades_in_flight.remove(&site);
                }
                track.copies.insert(
                    site,
                    CopyState {
                        access,
                        installed_at: Some(ev.at),
                        window_ticks: Some(ev.detail),
                    },
                );
            }
            TraceKind::Upgraded => {
                if !track.copies.contains_key(&site) {
                    report.violations.push(ctx("upgrade without a resident copy"));
                }
                for (&other, copy) in &track.copies {
                    if other != site {
                        report.violations.push(ctx(&format!(
                            "upgraded to writer while site{other} still holds a {:?} copy",
                            copy.access
                        )));
                    }
                }
                track.upgrades_in_flight.remove(&site);
                track.copies.insert(
                    site,
                    CopyState {
                        access: Access::Write,
                        installed_at: Some(ev.at),
                        window_ticks: Some(ev.detail),
                    },
                );
            }
            TraceKind::Downgraded => {
                match track.copies.get_mut(&site) {
                    Some(copy) => {
                        if !copy.access.is_write()
                            && track.upgrades_in_flight.remove(&site).is_none()
                        {
                            report.violations.push(ctx("downgrade of a non-writer copy"));
                        }
                        if let (Some(t0), Some(w)) = (copy.installed_at, copy.window_ticks) {
                            if ev.at < window_expiry(t0, w) {
                                report.violations.push(ctx(&format!(
                                    "Δ-window violated: downgraded at {} before expiry {}",
                                    ev.at.0,
                                    window_expiry(t0, w).0
                                )));
                            }
                        }
                        // §6.1: the downgrade keeps the copy and does
                        // *not* restart the window clock; only the
                        // window length changes.
                        copy.access = Access::Read;
                        copy.window_ticks = Some(ev.detail);
                    }
                    None => report.violations.push(ctx("downgrade without a resident copy")),
                }
            }
            TraceKind::CopyRelinquished => {
                if let Some(copy) = track.copies.remove(&site) {
                    if let (Some(t0), Some(w)) = (copy.installed_at, copy.window_ticks) {
                        if ev.at < window_expiry(t0, w) {
                            report.violations.push(ctx(&format!(
                                "Δ-window violated: relinquished at {} before expiry {}",
                                ev.at.0,
                                window_expiry(t0, w).0
                            )));
                        }
                    }
                }
            }
            TraceKind::ReaderInvalidated => {
                // Victims are invalidated regardless of their own
                // window (only the clock site's window protects), and
                // retry-mode re-acks for absent copies are legal.
                if let Some(copy) = track.copies.get(&site) {
                    if copy.access.is_write() {
                        report
                            .violations
                            .push(ctx("reader invalidation removed the writer's copy"));
                    }
                }
                track.copies.remove(&site);
            }
            TraceKind::UpgradeSent => {
                // §6.1 in-place upgrade: the library commits write
                // ownership to `peer` the moment it sends the grant.
                // The message may be lost, so the peer's own Upgraded
                // event is not guaranteed to follow; remember the
                // commitment so the recovery downgrade is not flagged.
                if let Some(peer) = ev.peer {
                    track.upgrades_in_flight.insert(peer.0, ev.serial);
                }
            }
            TraceKind::DeltaGrantSent => {
                if let Some(peer) = ev.peer {
                    track.delta_sent.insert((site, peer.0, ev.serial), ev.detail);
                }
            }
            TraceKind::DeltaPatched => {
                let sent = ev
                    .peer
                    .and_then(|p| track.delta_sent.get(&(p.0, site, ev.serial)).copied());
                match sent {
                    None => report
                        .violations
                        .push(ctx("delta patched with no matching delta grant")),
                    Some(tag) if tag != ev.detail => {
                        report.violations.push(ctx(&format!(
                            "delta patch diverged: granter served content {tag:#018x} \
                             but the patched page hashes to {:#018x}",
                            ev.detail
                        )));
                    }
                    Some(_) => {}
                }
            }
            TraceKind::ServeStart => {
                let role = shard_role(&libs, subject.0, subject.1);
                if site != role.site {
                    report.violations.push(ctx(&format!(
                        "serve started at site{site} but the library role is at \
                         site{} (epoch {})",
                        role.site, role.epoch
                    )));
                }
                if let Some(open) = track.serving {
                    if open != ev.serial {
                        report.violations.push(ctx(&format!(
                            "serve started while serial {open} still open"
                        )));
                    }
                }
                track.serving = Some(ev.serial);
            }
            TraceKind::ServeDone => {
                if let Some(open) = track.serving {
                    if open != ev.serial {
                        report.violations.push(ctx(&format!(
                            "serve done for serial {} but serial {open} was open",
                            ev.serial
                        )));
                    }
                }
                track.serving = None;
            }
            _ => {}
        }
    }

    report.pages = pages.values().filter(|t| t.touched).count();
    report
}

/// Per-page timestamp model for [`check_timestamps`], reconstructed
/// from the home site's grant events.
struct TsTrack {
    /// Write timestamp of the current version (pages are created at
    /// version 1).
    wts: u32,
    /// Read lease horizon granted so far.
    rts: u32,
    /// The exclusive owner the home has committed to, if one is out.
    /// Pages start owned by the creating (home) site.
    owner: Option<u16>,
    touched: bool,
}

/// Offline timestamp-ordering oracle for Tardis traces: the second
/// oracle beside the in-world quiescence checks.
///
/// Replays the `Ts*` events of a trace in happens-before order and
/// asserts the logical-lease invariants from the trace alone:
///
/// * **write serialization** — `wts` advances strictly, and every new
///   version is placed *after* every lease the home ever granted
///   (`wts' > rts`), so no read copy can legally observe two different
///   contents for one version;
/// * **single ownership** — a write grant requires the previous
///   ownership to have been resolved by a write-back, and write-backs
///   name the committed owner and surrender the version that was
///   granted;
/// * **lease discipline** — read/renew grants serve only the current
///   version, the lease horizon never regresses, and a lease never ends
///   before the version it covers;
/// * **install/grant matching** — no site installs a version the home
///   never produced, read copies sit inside their lease window, and a
///   lease is only ever expired once the program timestamp has actually
///   passed it.
///
/// Mirage traces contain no `Ts*` events and pass vacuously, so callers
/// can run both oracles over any trace regardless of protocol.
pub fn check_timestamps(events: &[TraceEvent]) -> CheckReport {
    let mut order: Vec<&TraceEvent> = events.iter().collect();
    order.sort_by_key(|ev| ev.at);

    let mut pages: BTreeMap<(SegmentId, PageNum), TsTrack> = BTreeMap::new();
    let mut report = CheckReport { events: events.len(), ..CheckReport::default() };

    for ev in order {
        let Some(subject) = ev.subject else { continue };
        let track = pages.entry(subject).or_insert_with(|| TsTrack {
            wts: 1,
            rts: 1,
            owner: Some(subject.0.library.0),
            touched: false,
        });
        let ctx = |msg: &str| format!("{msg}: {ev}");
        let hi = (ev.detail >> 32) as u32;
        let lo = ev.detail as u32;

        match ev.kind {
            TraceKind::TsReadGranted | TraceKind::TsRenewGranted => {
                track.touched = true;
                if let Some(owner) = track.owner {
                    report.violations.push(ctx(&format!(
                        "read granted while site{owner} holds exclusive ownership"
                    )));
                }
                if hi != track.wts {
                    report.violations.push(ctx(&format!(
                        "read grant serves version {hi} but the current version is {}",
                        track.wts
                    )));
                }
                if lo < track.rts {
                    report.violations.push(ctx(&format!(
                        "lease horizon regressed from {} to {lo}",
                        track.rts
                    )));
                }
                if lo < hi {
                    report
                        .violations
                        .push(ctx(&format!("lease ends at {lo} before its version {hi}")));
                }
                track.rts = track.rts.max(lo);
            }
            TraceKind::TsWriteGranted => {
                track.touched = true;
                if let Some(owner) = track.owner {
                    report.violations.push(ctx(&format!(
                        "write granted while site{owner}'s ownership is unresolved"
                    )));
                }
                if hi <= track.wts {
                    report.violations.push(ctx(&format!(
                        "write timestamp did not advance: {hi} after {}",
                        track.wts
                    )));
                }
                if hi <= track.rts {
                    report.violations.push(ctx(&format!(
                        "write at {hi} serialized inside a granted lease window \
                         (rts {})",
                        track.rts
                    )));
                }
                track.wts = hi;
                track.rts = track.rts.max(hi);
                track.owner = Some(ev.peer.map_or(ev.site.0, |p| p.0));
            }
            TraceKind::TsWriteBackApplied => {
                track.touched = true;
                match track.owner {
                    None => {
                        report
                            .violations
                            .push(ctx("write-back applied with no ownership outstanding"));
                    }
                    Some(owner) => {
                        if ev.peer.is_some_and(|p| p.0 != owner) {
                            report.violations.push(ctx(&format!(
                                "write-back from a site other than the owner site{owner}"
                            )));
                        }
                    }
                }
                // `detail` is the surrendered version; 0 marks an owner
                // renouncing a grant it never materialized.
                let surrendered = ev.detail as u32;
                if surrendered != 0 && surrendered != track.wts {
                    report.violations.push(ctx(&format!(
                        "write-back surrenders version {surrendered} but the \
                         granted version is {}",
                        track.wts
                    )));
                }
                track.owner = None;
            }
            TraceKind::TsRecallSent => {
                track.touched = true;
                match track.owner {
                    None => {
                        report.violations.push(ctx("recall sent with no owner out"));
                    }
                    Some(owner) => {
                        if ev.peer.is_some_and(|p| p.0 != owner) {
                            report.violations.push(ctx(&format!(
                                "recall targets a site other than the owner site{owner}"
                            )));
                        }
                    }
                }
            }
            TraceKind::TsInstalled | TraceKind::TsRenewed | TraceKind::TsUpgraded => {
                track.touched = true;
                if hi > track.wts {
                    report.violations.push(ctx(&format!(
                        "site installed version {hi} but the home never granted past {}",
                        track.wts
                    )));
                }
                if lo < hi {
                    report.violations.push(ctx(&format!(
                        "copy of version {hi} installed outside its lease (rts {lo})"
                    )));
                }
            }
            TraceKind::TsLeaseExpired => {
                track.touched = true;
                // detail packs (pts, rts): expiry is only legal once the
                // program timestamp has actually passed the lease.
                if hi <= lo {
                    report.violations.push(ctx(&format!(
                        "lease expired at pts {hi} while still live (rts {lo})"
                    )));
                }
            }
            TraceKind::TsWriteBackSent => {
                track.touched = true;
                let surrendered = ev.detail as u32;
                if surrendered > track.wts {
                    report.violations.push(ctx(&format!(
                        "owner surrenders version {surrendered} the home never \
                         granted (wts {})",
                        track.wts
                    )));
                }
            }
            _ => {}
        }
    }

    report.pages = pages.values().filter(|t| t.touched).count();
    report
}

#[cfg(test)]
mod tests {
    use mirage_types::SiteId;

    use super::*;
    use crate::event::SpanId;

    fn seg() -> SegmentId {
        SegmentId::new(SiteId(0), 1)
    }

    fn ev(at: u64, site: u16, kind: TraceKind) -> TraceEvent {
        let mut e = TraceEvent::new(SimTime(at), SiteId(site), kind);
        e.subject = Some((seg(), PageNum(0)));
        e.span = SpanId::NONE;
        e
    }

    fn with_access(mut e: TraceEvent, access: Access) -> TraceEvent {
        e.access = Some(access);
        e
    }

    #[test]
    fn clean_write_handoff_passes() {
        // Library (site0) relinquishes, site1 installs write, later
        // relinquishes after its window, site2 installs.
        let mut a = with_access(ev(10, 1, TraceKind::Installed), Access::Write);
        a.detail = 1; // 1-tick window
        let events = vec![
            ev(5, 0, TraceKind::CopyRelinquished),
            a,
            ev(10 + TICK.0, 1, TraceKind::CopyRelinquished),
            with_access(ev(20 + TICK.0, 2, TraceKind::Installed), Access::Write),
        ];
        let report = check(&events);
        assert!(report.is_ok(), "{:?}", report.violations);
        assert_eq!(report.pages, 1);
    }

    #[test]
    fn double_writer_is_caught() {
        let events = vec![
            ev(5, 0, TraceKind::CopyRelinquished),
            with_access(ev(10, 1, TraceKind::Installed), Access::Write),
            with_access(ev(20, 2, TraceKind::Installed), Access::Write),
        ];
        let report = check(&events);
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].contains("site1 still holds"));
    }

    #[test]
    fn initial_library_copy_blocks_other_writers() {
        // No relinquish event: the library still holds the page.
        let events = vec![with_access(ev(10, 1, TraceKind::Installed), Access::Write)];
        assert!(!check(&events).is_ok());
    }

    #[test]
    fn window_violation_is_caught() {
        let mut install = with_access(ev(10, 1, TraceKind::Installed), Access::Write);
        install.detail = 2; // 2-tick window
        let events = vec![
            ev(5, 0, TraceKind::CopyRelinquished),
            install,
            // Relinquished one tick early.
            ev(10 + TICK.0, 1, TraceKind::CopyRelinquished),
        ];
        let report = check(&events);
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].contains("Δ-window violated"));
    }

    #[test]
    fn victims_are_window_exempt() {
        let mut install = with_access(ev(10, 1, TraceKind::Installed), Access::Read);
        install.detail = 100;
        let events = vec![
            ev(5, 0, TraceKind::CopyRelinquished),
            install,
            ev(11, 1, TraceKind::ReaderInvalidated),
        ];
        assert!(check(&events).is_ok());
    }

    #[test]
    fn downgrade_keeps_install_time() {
        // Install at t=10 with 2 ticks; downgrade at expiry is legal,
        // but relinquishing after a downgrade that *shortened* the
        // window is judged against the original install time.
        let mut install = with_access(ev(10, 1, TraceKind::Installed), Access::Write);
        install.detail = 2;
        let mut down = ev(10 + 2 * TICK.0, 1, TraceKind::Downgraded);
        down.detail = 2;
        let late = ev(10 + 2 * TICK.0 + 1, 1, TraceKind::CopyRelinquished);
        let events = vec![ev(5, 0, TraceKind::CopyRelinquished), install, down, late];
        let report = check(&events);
        assert!(report.is_ok(), "{:?}", report.violations);
    }

    #[test]
    fn overlapping_serves_are_caught() {
        let mut s1 = ev(10, 0, TraceKind::ServeStart);
        s1.serial = 1;
        let mut s2 = ev(20, 0, TraceKind::ServeStart);
        s2.serial = 2;
        let report = check(&[s1, s2]);
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].contains("serial 1 still open"));
    }

    #[test]
    fn serve_follows_the_library_role() {
        // Site0 (creator) serves, hands the role to site2 at epoch 1,
        // and site2 continues serving: legal.
        let mut s1 = ev(10, 0, TraceKind::ServeStart);
        s1.serial = 1;
        let mut d1 = ev(15, 0, TraceKind::ServeDone);
        d1.serial = 1;
        let mut act = ev(20, 2, TraceKind::LibraryActivated);
        act.epoch = 1;
        let mut s2 = ev(30, 2, TraceKind::ServeStart);
        s2.serial = 2;
        let report = check(&[s1, d1, act, s2]);
        assert!(report.is_ok(), "{:?}", report.violations);
    }

    #[test]
    fn serve_from_a_stale_library_site_is_caught() {
        // After the role moved to site2, site0 must not open serves.
        let mut act = ev(20, 2, TraceKind::LibraryActivated);
        act.epoch = 1;
        let mut s = ev(30, 0, TraceKind::ServeStart);
        s.serial = 1;
        let report = check(&[act, s]);
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].contains("library role is at site2"));
    }

    #[test]
    fn handoff_spans_an_open_serve() {
        // A serve opened at site0 before the handoff completes at site2
        // after it — the edge linking the two epochs, not a violation.
        let mut s = ev(10, 0, TraceKind::ServeStart);
        s.serial = 1;
        let mut act = ev(20, 2, TraceKind::LibraryActivated);
        act.epoch = 1;
        let mut d = ev(30, 2, TraceKind::ServeDone);
        d.serial = 1;
        let report = check(&[s, act, d]);
        assert!(report.is_ok(), "{:?}", report.violations);
    }

    #[test]
    fn non_monotone_epoch_is_caught() {
        let mut a1 = ev(10, 1, TraceKind::LibraryActivated);
        a1.epoch = 2;
        let mut a2 = ev(20, 2, TraceKind::LibraryActivated);
        a2.epoch = 2;
        let report = check(&[a1, a2]);
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].contains("not monotone"));
    }

    #[test]
    fn upgrade_without_copy_is_caught() {
        let events =
            vec![ev(5, 0, TraceKind::CopyRelinquished), ev(10, 1, TraceKind::Upgraded)];
        let report = check(&events);
        assert!(report.violations.iter().any(|v| v.contains("without a resident copy")));
    }

    #[test]
    fn downgrade_of_a_plain_reader_is_caught() {
        // Site1 installs a read copy and then downgrades it with no
        // upgrade ever committed — a protocol error.
        let events = vec![
            ev(5, 0, TraceKind::CopyRelinquished),
            with_access(ev(10, 1, TraceKind::Installed), Access::Read),
            ev(20, 1, TraceKind::Downgraded),
        ];
        let report = check(&events);
        assert!(report.violations.iter().any(|v| v.contains("downgrade of a non-writer")));
    }

    #[test]
    fn delta_patch_with_matching_tag_passes() {
        let mut sent = ev(10, 0, TraceKind::DeltaGrantSent);
        sent.peer = Some(SiteId(1));
        sent.serial = 3;
        sent.detail = 0xABCD;
        let mut patched = ev(20, 1, TraceKind::DeltaPatched);
        patched.peer = Some(SiteId(0));
        patched.serial = 3;
        patched.detail = 0xABCD;
        let report = check(&[sent, patched]);
        assert!(report.is_ok(), "{:?}", report.violations);
    }

    #[test]
    fn delta_patch_divergence_is_caught() {
        let mut sent = ev(10, 0, TraceKind::DeltaGrantSent);
        sent.peer = Some(SiteId(1));
        sent.serial = 3;
        sent.detail = 0xABCD;
        let mut patched = ev(20, 1, TraceKind::DeltaPatched);
        patched.peer = Some(SiteId(0));
        patched.serial = 3;
        patched.detail = 0xEEEE;
        let report = check(&[sent, patched]);
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].contains("delta patch diverged"));
    }

    #[test]
    fn orphan_delta_patch_is_caught() {
        let mut patched = ev(20, 1, TraceKind::DeltaPatched);
        patched.peer = Some(SiteId(0));
        patched.serial = 3;
        patched.detail = 0xABCD;
        let report = check(&[patched]);
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].contains("no matching delta grant"));
    }

    #[test]
    fn downgrade_after_a_lost_upgrade_grant_is_legal() {
        // §6.1 upgrade whose UpgradeGrant is dropped in flight: the
        // library's serve order already counts site1 as the writer, so
        // the recovery Invalidate makes site1 downgrade a copy it still
        // believes is read-only. The commitment makes that legal — but
        // only once; a second bare downgrade is a violation again.
        let mut grant = ev(15, 0, TraceKind::UpgradeSent);
        grant.peer = Some(SiteId(1));
        let events = vec![
            ev(5, 0, TraceKind::CopyRelinquished),
            with_access(ev(10, 1, TraceKind::Installed), Access::Read),
            grant,
            ev(20, 1, TraceKind::Downgraded),
        ];
        let report = check(&events);
        assert!(report.is_ok(), "{:?}", report.violations);

        let mut again = events;
        again.push(ev(30, 1, TraceKind::Downgraded));
        let report = check(&again);
        assert!(report.violations.iter().any(|v| v.contains("downgrade of a non-writer")));
    }

    // --- timestamp oracle ---

    fn pk(wts: u32, rts: u32) -> u64 {
        (u64::from(wts) << 32) | u64::from(rts)
    }

    fn tev(at: u64, site: u16, kind: TraceKind, peer: u16, detail: u64) -> TraceEvent {
        let mut e = ev(at, site, kind);
        e.peer = Some(SiteId(peer));
        e.detail = detail;
        e
    }

    /// A full healthy Tardis page lifetime: self-recall at the home,
    /// read grant, write serialization, recall + dirty write-back,
    /// lease expiry, and a data-free renewal.
    fn healthy_ts_trace() -> Vec<TraceEvent> {
        vec![
            // Home (site0) surrenders its creation-time ownership.
            tev(1, 0, TraceKind::TsWriteBackApplied, 0, 1),
            tev(2, 0, TraceKind::TsReadGranted, 1, pk(1, 9)),
            tev(3, 1, TraceKind::TsInstalled, 0, pk(1, 9)),
            // site1 writes: new version placed past the lease horizon.
            tev(4, 0, TraceKind::TsWriteGranted, 1, pk(10, 10)),
            tev(5, 1, TraceKind::TsInstalled, 0, pk(10, 10)),
            // site2 reads: owner recalled, dirty data flows home.
            tev(6, 0, TraceKind::TsRecallSent, 1, 0),
            tev(7, 1, TraceKind::TsWriteBackSent, 0, 10),
            tev(8, 0, TraceKind::TsWriteBackApplied, 1, 10),
            tev(9, 0, TraceKind::TsReadGranted, 2, pk(10, 18)),
            tev(10, 2, TraceKind::TsInstalled, 0, pk(10, 18)),
            // site2's pts outruns the lease; the re-read renews with no
            // page copy on the wire.
            tev(11, 2, TraceKind::TsLeaseExpired, 0, pk(19, 18)),
            tev(12, 0, TraceKind::TsRenewGranted, 2, pk(10, 27)),
            tev(13, 2, TraceKind::TsRenewed, 0, pk(10, 27)),
        ]
    }

    #[test]
    fn healthy_timestamp_trace_passes() {
        let report = check_timestamps(&healthy_ts_trace());
        assert!(report.is_ok(), "{:?}", report.violations);
        assert_eq!(report.pages, 1);
    }

    #[test]
    fn mirage_traces_pass_vacuously() {
        // A Mirage trace has no Ts* events: the timestamp oracle can be
        // run over any trace regardless of protocol.
        let events = vec![
            ev(5, 0, TraceKind::CopyRelinquished),
            with_access(ev(10, 1, TraceKind::Installed), Access::Write),
        ];
        let report = check_timestamps(&events);
        assert!(report.is_ok());
        assert_eq!(report.pages, 0);
    }

    #[test]
    fn write_grant_with_ownership_outstanding_is_caught() {
        // Pages start owned by their creating site; a write grant
        // before that ownership is resolved is a protocol bug.
        let events = vec![tev(2, 0, TraceKind::TsWriteGranted, 1, pk(5, 5))];
        let report = check_timestamps(&events);
        assert!(report.violations.iter().any(|v| v.contains("ownership is unresolved")));
    }

    #[test]
    fn non_advancing_write_timestamp_is_caught() {
        let events = vec![
            tev(1, 0, TraceKind::TsWriteBackApplied, 0, 1),
            // wts stays at 1: two versions would share a timestamp.
            tev(2, 0, TraceKind::TsWriteGranted, 1, pk(1, 1)),
        ];
        let report = check_timestamps(&events);
        assert!(report.violations.iter().any(|v| v.contains("did not advance")));
    }

    #[test]
    fn write_inside_granted_lease_window_is_caught() {
        let events = vec![
            tev(1, 0, TraceKind::TsWriteBackApplied, 0, 1),
            tev(2, 0, TraceKind::TsReadGranted, 1, pk(1, 9)),
            // New version at 5 lands inside the lease granted to 9: a
            // reader could legally observe both old and new content for
            // overlapping logical times.
            tev(3, 0, TraceKind::TsWriteGranted, 2, pk(5, 5)),
        ];
        let report = check_timestamps(&events);
        assert!(report.violations.iter().any(|v| v.contains("inside a granted lease window")));
    }

    #[test]
    fn stale_read_grant_is_caught() {
        let mut events = healthy_ts_trace();
        // Home re-serves version 1 after version 10 was committed.
        events.push(tev(14, 0, TraceKind::TsReadGranted, 1, pk(1, 30)));
        let report = check_timestamps(&events);
        assert!(report.violations.iter().any(|v| v.contains("current version is 10")));
    }

    #[test]
    fn regressing_lease_horizon_is_caught() {
        let mut events = healthy_ts_trace();
        events.push(tev(14, 0, TraceKind::TsReadGranted, 1, pk(10, 20)));
        let report = check_timestamps(&events);
        assert!(report.violations.iter().any(|v| v.contains("lease horizon regressed")));
    }

    #[test]
    fn expiry_of_live_lease_is_caught() {
        let events = vec![tev(1, 1, TraceKind::TsLeaseExpired, 0, pk(5, 8))];
        let report = check_timestamps(&events);
        assert!(report.violations.iter().any(|v| v.contains("still live")));
    }

    #[test]
    fn write_back_version_mismatch_is_caught() {
        let mut events = healthy_ts_trace();
        // site0 still owns nothing at this point: grant a write, then
        // have the owner surrender the wrong version.
        events.push(tev(14, 0, TraceKind::TsWriteGranted, 1, pk(28, 28)));
        events.push(tev(15, 0, TraceKind::TsWriteBackApplied, 1, 7));
        let report = check_timestamps(&events);
        assert!(report.violations.iter().any(|v| v.contains("granted version is 28")));
    }

    #[test]
    fn renounced_write_back_is_legal() {
        let mut events = healthy_ts_trace();
        events.push(tev(14, 0, TraceKind::TsWriteGranted, 1, pk(28, 28)));
        // detail 0 marks an owner renouncing a grant it never
        // materialized (crash-recovery rollback).
        events.push(tev(15, 0, TraceKind::TsWriteBackApplied, 1, 0));
        let report = check_timestamps(&events);
        assert!(report.is_ok(), "{:?}", report.violations);
    }

    #[test]
    fn install_of_ungranted_version_is_caught() {
        let events = vec![tev(2, 1, TraceKind::TsInstalled, 0, pk(3, 9))];
        let report = check_timestamps(&events);
        assert!(report.violations.iter().any(|v| v.contains("home never granted past 1")));
    }

    #[test]
    fn recall_with_no_owner_out_is_caught() {
        let events = vec![
            tev(1, 0, TraceKind::TsWriteBackApplied, 0, 1),
            tev(2, 0, TraceKind::TsRecallSent, 1, 0),
        ];
        let report = check_timestamps(&events);
        assert!(report.violations.iter().any(|v| v.contains("no owner out")));
    }
}
