//! The structured protocol event trace.
//!
//! Every interesting protocol transition — a fault taken, a request
//! queued at the library, an invalidation round, a grant installed, a
//! retransmission, a fault-layer decision — is recorded as one
//! [`TraceEvent`]: a small, `Copy`, fixed-size record stamped with
//! simulated time, the emitting site, and a causal [`SpanId`].
//!
//! Spans are *per-site* causal segments of one logical demand:
//!
//! * the **requesting** site opens a span at the page fault and closes
//!   it at install/upgrade (`FaultTaken … Installed`);
//! * the **library** site opens a span when a serve starts and closes
//!   it at `ServeDone`;
//! * the **clock** site opens a span when it honors an invalidation and
//!   threads it through the victim round, the grants, and the
//!   `InvalidateDone` (including every retry chain).
//!
//! The three segments of one demand are correlated offline by
//! `(seg, page, serial)` — span ids are never put on the wire, so
//! tracing cannot change protocol behaviour. Events are emitted only
//! when tracing is enabled; the disabled path constructs nothing.

use core::fmt;

use mirage_net::MsgKind;
use mirage_types::{
    Access,
    PageNum,
    Pid,
    SegmentId,
    SimTime,
    SiteId,
};

/// A per-site causal span identifier.
///
/// Encoded as `(site + 1) << 48 | counter` so ids are unique across
/// sites without coordination; the all-zero value is [`SpanId::NONE`]
/// (event not part of any span).
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The null span: the event is not part of any demand's lifecycle.
    pub const NONE: SpanId = SpanId(0);

    /// Builds a span id from an allocating site and a site-local counter.
    #[inline]
    pub fn new(site: SiteId, counter: u64) -> Self {
        SpanId(((u64::from(site.0) + 1) << 48) | (counter & 0xFFFF_FFFF_FFFF))
    }

    /// True for [`SpanId::NONE`].
    #[inline]
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// The site that allocated this span (`None` for [`SpanId::NONE`]).
    pub fn site(self) -> Option<SiteId> {
        if self.is_none() {
            None
        } else {
            Some(SiteId(((self.0 >> 48) - 1) as u16))
        }
    }

    /// The site-local counter part of the id.
    pub fn counter(self) -> u64 {
        self.0 & 0xFFFF_FFFF_FFFF
    }
}

impl fmt::Debug for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.site() {
            None => write!(f, "-"),
            Some(site) => write!(f, "{}#{}", site.0, self.counter()),
        }
    }
}

/// What happened. Grouped by the site role that emits the event; the
/// wire/fault kinds at the end are emitted by the transport (the
/// simulator), not the engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceKind {
    // -- requesting site ------------------------------------------------
    /// A process took a page fault that could not be satisfied locally.
    FaultTaken,
    /// A `PageRequest` left for the library site.
    RequestSent,
    /// The request timer fired and the `PageRequest` was retransmitted.
    RequestRetry,
    /// A `PageGrant` was installed (`detail` = window in ticks).
    Installed,
    /// The site became the writer in place (upgrade or self-grant;
    /// `detail` = window in ticks).
    Upgraded,
    /// An arriving grant predated `min_install_serial` and was dropped.
    StaleGrantDropped,

    // -- library site ---------------------------------------------------
    /// A `PageRequest` entered the library queue (`detail` = depth
    /// after insertion).
    RequestQueued,
    /// The library started serving a demand (sent `Invalidate` or
    /// confirmed a stale writer).
    ServeStart,
    /// The serve timer fired and the `Invalidate` was retransmitted.
    ServeRetry,
    /// The library batched readers onto the current copy set without
    /// invalidating (`detail` = readers added).
    AddReadersSent,
    /// The clock refused the invalidation (`detail` = wait in ns).
    DenyReceived,
    /// The deny backoff expired and the library re-sent the
    /// `Invalidate`.
    DenyRetry,
    /// `InvalidateDone` arrived; the serve is complete (`detail` = 1 if
    /// the writer was downgraded in place).
    ServeDone,
    /// The library role was frozen for a handoff: records snapshotted,
    /// slot deactivated, forwarding stub installed (`peer` = the
    /// destination site, `epoch` = the new handoff epoch).
    LibraryFrozen,
    /// The frozen library state left for the destination site
    /// (`detail` = retransmit attempt, 0 for the initial send).
    HandoffSent,
    /// A handoff was adopted: this site is now the segment's library
    /// (`peer` = the old library site, `detail` = pages with an
    /// in-flight serve reanimated).
    LibraryActivated,
    /// The destination acknowledged the handoff; the old site stops
    /// retransmitting the frozen state.
    HandoffAcked,
    /// A library-bound message hit a deactivated slot and the sender
    /// was pointed at the new site (`peer` = the redirected sender).
    RedirectSent,
    /// A redirect with a newer epoch updated this site's library hint
    /// (`peer` = the new library site; outstanding requests re-aimed).
    RedirectApplied,

    // -- clock site -----------------------------------------------------
    /// The clock denied an invalidation inside its Δ window
    /// (`detail` = remaining window in ns).
    DenySent,
    /// Queued-invalidation mode: the invalidation was shelved until
    /// window expiry (`detail` = delay in ns).
    InvalidateQueued,
    /// The invalidation arrived before the copy it refers to and was
    /// deferred.
    InvalidateDeferred,
    /// An `AddReaders` duty arrived before the copy and was deferred.
    AddReadersDeferred,
    /// The clock accepted the invalidation and opened a victim round
    /// (`detail` = victim count).
    RoundStart,
    /// A `ReaderInvalidate` left for a victim reader.
    ReaderInvalidateSent,
    /// A victim reader discarded its copy (or acknowledged an already
    /// absent one).
    ReaderInvalidated,
    /// The round timer fired and outstanding `ReaderInvalidate`s were
    /// retransmitted.
    RoundRetry,
    /// A `PageGrant` left for the new copy holder.
    GrantSent,
    /// An `UpgradeGrant` notification left for the stale-PTE writer.
    UpgradeSent,
    /// A retained grant was retransmitted by the grant timer
    /// (`detail` = grants resent).
    GrantRetry,
    /// An `UpgradeNack` came back and the granter escalated to a full
    /// `PageGrant`.
    GrantEscalated,
    /// The receiver of an `UpgradeGrant` had no frame and nacked it.
    UpgradeNackSent,
    /// A `PageGrantDelta` left for the new copy holder (`peer` = the
    /// recipient, `detail` = fnv64 hash of the page content the patch
    /// must reproduce, `epoch` = encoded payload bytes — a
    /// kind-specific reuse; delta grants never cross a handoff epoch
    /// boundary in one message).
    DeltaGrantSent,
    /// A delta grant's spans were applied to the local shadow copy and
    /// the result installed (`peer` = the granter, `detail` = fnv64
    /// hash of the patched page).
    DeltaPatched,
    /// A delta grant arrived but the local shadow was missing or did
    /// not match `base_tag`; the receiver nacked for a full grant.
    DeltaRejected,
    /// The writer kept a read copy while granting reads
    /// (`detail` = window in ticks; the window clock is *not*
    /// restarted).
    Downgraded,
    /// The clock gave up its own copy as part of honoring an
    /// invalidation.
    CopyRelinquished,
    /// `InvalidateDone` left for the library.
    DoneSent,
    /// The done timer fired and `InvalidateDone` was retransmitted.
    DoneRetry,

    // -- timestamp coherence (Tardis home site) --------------------------
    /// The home served a read lease with the page
    /// (`detail` = `(wts << 32) | rts` of the grant, `peer` = the
    /// requester).
    TsReadGranted,
    /// The home extended a lease for a version the requester already
    /// caches — no data on the wire (`detail` = `(wts << 32) | rts`).
    TsRenewGranted,
    /// The home granted exclusive ownership at a bumped write
    /// timestamp (`detail` = `(wts << 32) | rts` after the bump,
    /// `access` = Write; `epoch` = 1 when the grant carried the page,
    /// 0 for an in-place upgrade).
    TsWriteGranted,
    /// The home asked the current exclusive owner to surrender its
    /// copy (`peer` = the owner).
    TsRecallSent,
    /// The home adopted a write-back into the master copy
    /// (`detail` = the written version's `wts`, `peer` = the owner).
    TsWriteBackApplied,

    // -- timestamp coherence (Tardis requesting site) --------------------
    /// A read lease with data was installed
    /// (`detail` = `(wts << 32) | rts`).
    TsInstalled,
    /// A lease extension refreshed the cached copy in place
    /// (`detail` = `(wts << 32) | rts`).
    TsRenewed,
    /// This site became the exclusive owner (`detail` = the new `wts`).
    TsUpgraded,
    /// The site's program timestamp advanced past a cached lease; the
    /// copy is now stale-until-renewed (`detail` = `(pts << 32) | rts`
    /// of the expired lease).
    TsLeaseExpired,
    /// The owner surrendered its copy to the home
    /// (`detail` = the surrendered version's `wts`; `epoch` = 1 when
    /// the write-back carried dirty data, 0 for a clean confirmation).
    TsWriteBackSent,

    // -- wire / fault layer (emitted by the transport) -------------------
    /// A message was put on the wire (`detail` = wire latency in ns).
    MsgSent,
    /// The fault plan dropped the message.
    MsgDropped,
    /// The fault plan added latency (`detail` = extra ns).
    MsgDelayed,
    /// The fault plan injected a duplicate copy.
    MsgDuplicated,
    /// The receiver held an out-of-order message back for a gap fill.
    MsgHeldBack,
    /// The receiver declared a sequence gap lost and advanced past it.
    GapDeclared,
    /// A duplicate was discarded by the circuit layer.
    MsgDupDiscarded,
    /// A message from a stale incarnation (or to a down site) was
    /// discarded.
    MsgStaleDropped,
    /// The site crashed (volatile state lost).
    SiteCrash,
    /// The site restarted (`detail` = incarnation).
    SiteRestart,
}

impl TraceKind {
    /// Short stable name used by the text and JSON encodings.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::FaultTaken => "fault_taken",
            TraceKind::RequestSent => "request_sent",
            TraceKind::RequestRetry => "request_retry",
            TraceKind::Installed => "installed",
            TraceKind::Upgraded => "upgraded",
            TraceKind::StaleGrantDropped => "stale_grant_dropped",
            TraceKind::RequestQueued => "request_queued",
            TraceKind::ServeStart => "serve_start",
            TraceKind::ServeRetry => "serve_retry",
            TraceKind::AddReadersSent => "add_readers_sent",
            TraceKind::DenyReceived => "deny_received",
            TraceKind::DenyRetry => "deny_retry",
            TraceKind::ServeDone => "serve_done",
            TraceKind::LibraryFrozen => "library_frozen",
            TraceKind::HandoffSent => "handoff_sent",
            TraceKind::LibraryActivated => "library_activated",
            TraceKind::HandoffAcked => "handoff_acked",
            TraceKind::RedirectSent => "redirect_sent",
            TraceKind::RedirectApplied => "redirect_applied",
            TraceKind::DenySent => "deny_sent",
            TraceKind::InvalidateQueued => "invalidate_queued",
            TraceKind::InvalidateDeferred => "invalidate_deferred",
            TraceKind::AddReadersDeferred => "add_readers_deferred",
            TraceKind::RoundStart => "round_start",
            TraceKind::ReaderInvalidateSent => "reader_invalidate_sent",
            TraceKind::ReaderInvalidated => "reader_invalidated",
            TraceKind::RoundRetry => "round_retry",
            TraceKind::GrantSent => "grant_sent",
            TraceKind::UpgradeSent => "upgrade_sent",
            TraceKind::GrantRetry => "grant_retry",
            TraceKind::GrantEscalated => "grant_escalated",
            TraceKind::UpgradeNackSent => "upgrade_nack_sent",
            TraceKind::DeltaGrantSent => "delta_grant_sent",
            TraceKind::DeltaPatched => "delta_patched",
            TraceKind::DeltaRejected => "delta_rejected",
            TraceKind::Downgraded => "downgraded",
            TraceKind::CopyRelinquished => "copy_relinquished",
            TraceKind::DoneSent => "done_sent",
            TraceKind::DoneRetry => "done_retry",
            TraceKind::TsReadGranted => "ts_read_granted",
            TraceKind::TsRenewGranted => "ts_renew_granted",
            TraceKind::TsWriteGranted => "ts_write_granted",
            TraceKind::TsRecallSent => "ts_recall_sent",
            TraceKind::TsWriteBackApplied => "ts_writeback_applied",
            TraceKind::TsInstalled => "ts_installed",
            TraceKind::TsRenewed => "ts_renewed",
            TraceKind::TsUpgraded => "ts_upgraded",
            TraceKind::TsLeaseExpired => "ts_lease_expired",
            TraceKind::TsWriteBackSent => "ts_writeback_sent",
            TraceKind::MsgSent => "msg_sent",
            TraceKind::MsgDropped => "msg_dropped",
            TraceKind::MsgDelayed => "msg_delayed",
            TraceKind::MsgDuplicated => "msg_duplicated",
            TraceKind::MsgHeldBack => "msg_held_back",
            TraceKind::GapDeclared => "gap_declared",
            TraceKind::MsgDupDiscarded => "msg_dup_discarded",
            TraceKind::MsgStaleDropped => "msg_stale_dropped",
            TraceKind::SiteCrash => "site_crash",
            TraceKind::SiteRestart => "site_restart",
        }
    }

    /// True for the retry-chain kinds (all five engine chains plus the
    /// Δ-deny backoff).
    pub fn is_retry(self) -> bool {
        matches!(
            self,
            TraceKind::RequestRetry
                | TraceKind::ServeRetry
                | TraceKind::RoundRetry
                | TraceKind::DoneRetry
                | TraceKind::GrantRetry
                | TraceKind::DenyRetry
        )
    }
}

/// One record in the protocol trace.
///
/// The fixed shape (rather than per-kind payload enums) keeps the
/// record `Copy` and cheap to buffer; fields that do not apply to a
/// kind are `None`/zero. `detail` is a kind-specific scalar documented
/// on each [`TraceKind`] variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated time of the event.
    pub at: SimTime,
    /// The site that emitted the event.
    pub site: SiteId,
    /// The causal span this event belongs to ([`SpanId::NONE`] if none).
    pub span: SpanId,
    /// What happened.
    pub kind: TraceKind,
    /// The page the event concerns (`None` for site-level events such
    /// as crash/restart).
    pub subject: Option<(SegmentId, PageNum)>,
    /// The other site involved (message destination/source), if any.
    pub peer: Option<SiteId>,
    /// The faulting process, when the event is tied to one.
    pub pid: Option<Pid>,
    /// The access mode in play, when meaningful.
    pub access: Option<Access>,
    /// The wire message kind, for transport-level events.
    pub msg: Option<MsgKind>,
    /// The demand serial (0 when retries are disabled).
    pub serial: u32,
    /// Kind-specific scalar (see [`TraceKind`] docs).
    pub detail: u64,
    /// The library-handoff epoch in play (0 while the segment's library
    /// has never moved, so pre-migration traces are unchanged).
    pub epoch: u32,
}

impl TraceEvent {
    /// Builds a minimal event; callers fill in the optional fields.
    pub fn new(at: SimTime, site: SiteId, kind: TraceKind) -> Self {
        TraceEvent {
            at,
            site,
            span: SpanId::NONE,
            kind,
            subject: None,
            peer: None,
            pid: None,
            access: None,
            msg: None,
            serial: 0,
            detail: 0,
            epoch: 0,
        }
    }
}

impl fmt::Display for TraceEvent {
    /// One stable text line per event — the format pinned by the
    /// golden-trace tests and written by the JSONL sink's sibling
    /// text logs.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>12}] site{} {}", self.at.0, self.site.0, self.kind.name())?;
        if let Some((seg, page)) = self.subject {
            write!(f, " seg{}@{}.p{}", seg.serial, seg.library.0, page.0)?;
        }
        if !self.span.is_none() {
            write!(f, " span={:?}", self.span)?;
        }
        if let Some(peer) = self.peer {
            write!(f, " peer=site{}", peer.0)?;
        }
        if let Some(pid) = self.pid {
            write!(f, " pid={:?}", pid)?;
        }
        if let Some(access) = self.access {
            write!(f, " access={access:?}")?;
        }
        if let Some(msg) = self.msg {
            write!(f, " msg={}", msg.name())?;
        }
        if self.serial != 0 {
            write!(f, " serial={}", self.serial)?;
        }
        if self.detail != 0 {
            write!(f, " detail={}", self.detail)?;
        }
        if self.epoch != 0 {
            write!(f, " epoch={}", self.epoch)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_id_round_trips_site_and_counter() {
        let span = SpanId::new(SiteId(7), 42);
        assert_eq!(span.site(), Some(SiteId(7)));
        assert_eq!(span.counter(), 42);
        assert!(!span.is_none());
        assert!(SpanId::NONE.is_none());
        assert_eq!(SpanId::NONE.site(), None);
    }

    #[test]
    fn display_is_stable_and_omits_empty_fields() {
        let mut ev = TraceEvent::new(SimTime(1_500), SiteId(2), TraceKind::RequestSent);
        ev.subject = Some((SegmentId::new(SiteId(0), 1), PageNum(3)));
        ev.span = SpanId::new(SiteId(2), 1);
        ev.peer = Some(SiteId(0));
        ev.access = Some(Access::Write);
        let line = ev.to_string();
        assert_eq!(
            line,
            "[        1500] site2 request_sent seg1@0.p3 span=2#1 peer=site0 access=W"
        );
        let bare = TraceEvent::new(SimTime::ZERO, SiteId(0), TraceKind::SiteCrash);
        assert_eq!(bare.to_string(), "[           0] site0 site_crash");
    }
}
