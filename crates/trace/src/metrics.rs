//! A plain-std metrics registry: counters, gauges, and fixed-bucket
//! histograms, with deterministic text rendering and order-independent
//! merging (so per-worker registries from a `--jobs N` sweep combine
//! into the same report regardless of completion order).
//!
//! [`from_trace`] derives the standard protocol metrics — per-kind wire
//! latencies, demand fetch latency, library queue depth, Δ-window stall
//! time, upgrade/downgrade hit rates, retry/fault counters — from a
//! recorded event stream, so any traced run can be summarized without
//! touching the hot path.

use std::collections::BTreeMap;

use crate::event::{
    TraceEvent,
    TraceKind,
};

/// Histogram bucket upper bounds (µs) used for latency metrics.
pub const LATENCY_US_BOUNDS: &[u64] =
    &[50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000];

/// Histogram bucket upper bounds used for queue-depth metrics.
pub const DEPTH_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32, 64];

/// Histogram bucket upper bounds (bytes) for delta-grant payload sizes.
/// 516 is the full-grant payload the delta must undercut to be sent.
pub const DELTA_BYTES_BOUNDS: &[u64] = &[16, 32, 64, 128, 256, 384, 515];

/// A fixed-bucket histogram with saturating totals.
///
/// A value `v` lands in the first bucket whose upper bound satisfies
/// `v <= bound`; values above the last bound land in the overflow
/// bucket. Bounds are fixed at construction, so merging two histograms
/// with the same bounds is a plain element-wise add — commutative and
/// associative, which is what makes multi-worker merges deterministic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Creates a histogram with the given ascending bucket upper bounds.
    pub fn new(bounds: &[u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len()],
            overflow: 0,
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one value.
    pub fn observe(&mut self, v: u64) {
        match self.bounds.iter().position(|&b| v <= b) {
            Some(i) => self.counts[i] = self.counts[i].saturating_add(1),
            None => self.overflow = self.overflow.saturating_add(1),
        }
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of observed values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observed value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Count in the bucket with upper bound `bound` (must be one of the
    /// construction bounds), or the overflow bucket for `None`.
    pub fn bucket(&self, bound: Option<u64>) -> u64 {
        match bound {
            Some(b) => {
                self.bounds.iter().position(|&x| x == b).map(|i| self.counts[i]).unwrap_or(0)
            }
            None => self.overflow,
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// (`0.0..=1.0`), or `None` if it falls in the overflow bucket or
    /// the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(self.bounds[i]);
            }
        }
        None
    }

    /// Element-wise merge (both sides must share bounds).
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "merging histograms with different bounds");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a = a.saturating_add(*b);
        }
        self.overflow = self.overflow.saturating_add(other.overflow);
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

/// A named collection of counters, gauges, and histograms.
///
/// Names are free-form dotted strings (`msg.sent.page_grant`); the
/// `BTreeMap` storage makes iteration — and therefore [`Registry::render`] —
/// deterministic.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the named counter (created at zero).
    pub fn add(&mut self, name: &str, n: u64) {
        let c = self.counters.entry(name.to_string()).or_insert(0);
        *c = c.saturating_add(n);
    }

    /// Raises the named gauge to at least `v` (high-water mark).
    pub fn gauge_max(&mut self, name: &str, v: u64) {
        let g = self.gauges.entry(name.to_string()).or_insert(0);
        *g = (*g).max(v);
    }

    /// Sets the named gauge to `v` unconditionally.
    pub fn gauge_set(&mut self, name: &str, v: u64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Records `v` in the named histogram (created with `bounds`).
    pub fn observe(&mut self, name: &str, bounds: &[u64], v: u64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(v);
    }

    /// Reads a counter (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Reads a gauge (0 if absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Reads a histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Merges another registry into this one: counters add, gauges take
    /// the max, histograms add bucket-wise. Commutative and
    /// associative, so a `--jobs N` sweep can merge per-worker
    /// registries in any order and render the same report.
    pub fn merge(&mut self, other: &Registry) {
        for (name, n) in &other.counters {
            self.add(name, *n);
        }
        for (name, v) in &other.gauges {
            self.gauge_max(name, *v);
        }
        for (name, h) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(name.clone(), h.clone());
                }
            }
        }
    }

    /// Renders the registry as a stable, human-readable text block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, n) in &self.counters {
                out.push_str(&format!("  {name:<40} {n}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, v) in &self.gauges {
                out.push_str(&format!("  {name:<40} {v}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (name, h) in &self.histograms {
                let avg = h.sum.checked_div(h.count).unwrap_or(0);
                let q = |x: f64| match h.quantile(x) {
                    Some(b) => format!("<={b}"),
                    None => format!(">{}", h.bounds.last().copied().unwrap_or(0)),
                };
                out.push_str(&format!(
                    "  {:<40} count={} avg={} p50={} p95={} max={}\n",
                    name,
                    h.count,
                    avg,
                    q(0.50),
                    q(0.95),
                    h.max
                ));
            }
        }
        out
    }
}

/// Derives the standard protocol metrics from a recorded trace.
pub fn from_trace(events: &[TraceEvent]) -> Registry {
    let mut reg = Registry::new();
    // Outstanding remote fetches: (site, subject) -> request time.
    let mut fetches: BTreeMap<(u16, (u16, u32, u32)), u64> = BTreeMap::new();
    let key = |ev: &TraceEvent| {
        ev.subject.map(|(seg, page)| (ev.site.0, (seg.library.0, seg.serial, page.0)))
    };
    for ev in events {
        match ev.kind {
            TraceKind::MsgSent => {
                if let Some(msg) = ev.msg {
                    reg.add(&format!("msg.sent.{}", msg.name()), 1);
                    reg.observe(
                        &format!("wire.latency_us.{}", msg.name()),
                        LATENCY_US_BOUNDS,
                        ev.detail / 1_000,
                    );
                    // Payload bytes on the wire, per message kind:
                    // §7.2's 1024-byte page buffer rides on every full
                    // grant and library handoff; header-only kinds
                    // carry nothing. Delta grants are counted exactly,
                    // from the encoded payload the granter stamps on
                    // `DeltaGrantSent` (below), since `MsgSent` does
                    // not see the encoded form.
                    if matches!(msg.name(), "PageGrant" | "LibraryHandoff" | "TsReadData") {
                        reg.add(&format!("wire.bytes.{}", msg.name()), 1024);
                    }
                }
            }
            TraceKind::RequestSent => {
                reg.add("demand.requests", 1);
                if let Some(k) = key(ev) {
                    fetches.entry(k).or_insert(ev.at.0);
                }
            }
            TraceKind::Installed | TraceKind::Upgraded => {
                reg.add(
                    if ev.kind == TraceKind::Upgraded {
                        "copy.upgrades"
                    } else {
                        "copy.installs"
                    },
                    1,
                );
                if let Some(k) = key(ev) {
                    if let Some(t0) = fetches.remove(&k) {
                        reg.observe(
                            "demand.fetch_latency_us",
                            LATENCY_US_BOUNDS,
                            ev.at.0.saturating_sub(t0) / 1_000,
                        );
                    }
                }
            }
            TraceKind::Downgraded => reg.add("copy.downgrades", 1),
            TraceKind::CopyRelinquished => reg.add("copy.relinquished", 1),
            TraceKind::ReaderInvalidated => reg.add("copy.reader_invalidated", 1),
            TraceKind::RequestQueued => {
                reg.observe("library.queue_depth", DEPTH_BOUNDS, ev.detail);
                reg.gauge_max("library.queue_depth_max", ev.detail);
            }
            TraceKind::ServeStart => {
                reg.add(
                    if ev.access.map(|a| a.is_write()).unwrap_or(false) {
                        "serve.write"
                    } else {
                        "serve.read"
                    },
                    1,
                );
            }
            TraceKind::AddReadersSent => reg.add("serve.add_readers", 1),
            TraceKind::DenySent => {
                reg.add("window.denials", 1);
                reg.observe("window.stall_us", LATENCY_US_BOUNDS, ev.detail / 1_000);
            }
            TraceKind::InvalidateQueued => {
                reg.add("window.queued_delays", 1);
                reg.observe("window.stall_us", LATENCY_US_BOUNDS, ev.detail / 1_000);
            }
            TraceKind::RequestRetry => reg.add("retry.request", 1),
            TraceKind::ServeRetry => reg.add("retry.serve", 1),
            TraceKind::RoundRetry => reg.add("retry.round", 1),
            TraceKind::DoneRetry => reg.add("retry.done", 1),
            TraceKind::GrantRetry => reg.add("retry.grant", ev.detail.max(1)),
            TraceKind::DenyRetry => reg.add("retry.deny_backoff", 1),
            TraceKind::GrantSent => {
                reg.add("grant.sent", 1);
                reg.add("grant.full_sent", 1);
            }
            TraceKind::DeltaGrantSent => {
                reg.add("grant.sent", 1);
                reg.add("grant.delta_sent", 1);
                // `epoch` on this kind is the encoded delta payload in
                // bytes (kind-specific reuse documented on the event).
                reg.add("wire.bytes.PageGrantDelta", u64::from(ev.epoch));
                reg.observe("grant.delta_bytes", DELTA_BYTES_BOUNDS, u64::from(ev.epoch));
            }
            TraceKind::DeltaPatched => reg.add("grant.delta_patched", 1),
            TraceKind::DeltaRejected => reg.add("grant.delta_rejected", 1),
            TraceKind::UpgradeSent => reg.add("grant.upgrades_sent", 1),
            TraceKind::GrantEscalated => reg.add("grant.escalated", 1),
            TraceKind::StaleGrantDropped => reg.add("grant.stale_dropped", 1),
            TraceKind::MsgDropped => reg.add("fault.dropped", 1),
            TraceKind::MsgDelayed => reg.add("fault.delayed", 1),
            TraceKind::MsgDuplicated => reg.add("fault.duplicated", 1),
            TraceKind::MsgHeldBack => reg.add("fault.held_back", 1),
            TraceKind::GapDeclared => reg.add("fault.gaps_declared", 1),
            TraceKind::MsgDupDiscarded => reg.add("fault.dup_discarded", 1),
            TraceKind::MsgStaleDropped => reg.add("fault.stale_dropped", 1),
            TraceKind::SiteCrash => reg.add("fault.crashes", 1),
            TraceKind::SiteRestart => reg.add("fault.restarts", 1),
            // Timestamp-coherence (Tardis) protocol events. The
            // renewal-vs-invalidation story is `ts.renew_grants`
            // against Mirage's `copy.reader_invalidated`: Tardis
            // readers age out of their leases and renew with a
            // header-only exchange instead of being chased.
            TraceKind::TsReadGranted => reg.add("ts.read_grants", 1),
            TraceKind::TsRenewGranted => reg.add("ts.renew_grants", 1),
            TraceKind::TsWriteGranted => {
                reg.add("ts.write_grants", 1);
                // `epoch` flags whether the grant carried page data; an
                // in-place grant is the Tardis analogue of §6.1's
                // upgrade-without-copy. Self-grants never hit the wire.
                if ev.epoch == 0 {
                    reg.add("ts.write_grants_in_place", 1);
                } else if ev.peer != Some(ev.site) {
                    reg.add("wire.bytes.TsWriteGrant", 1024);
                }
            }
            TraceKind::TsRecallSent => reg.add("ts.recalls", 1),
            TraceKind::TsWriteBackSent => {
                reg.add("ts.writebacks", 1);
                // `epoch` flags a dirty write-back carrying page bytes.
                if ev.epoch == 1 && ev.peer != Some(ev.site) {
                    reg.add("wire.bytes.TsWriteBack", 1024);
                }
            }
            TraceKind::TsWriteBackApplied => reg.add("ts.writebacks_applied", 1),
            TraceKind::TsLeaseExpired => reg.add("ts.lease_expiries", 1),
            TraceKind::TsInstalled | TraceKind::TsUpgraded | TraceKind::TsRenewed => {
                reg.add(
                    match ev.kind {
                        TraceKind::TsUpgraded => "ts.upgrades",
                        TraceKind::TsRenewed => "ts.renewals",
                        _ => "ts.installs",
                    },
                    1,
                );
                if let Some(k) = key(ev) {
                    if let Some(t0) = fetches.remove(&k) {
                        reg.observe(
                            "demand.fetch_latency_us",
                            LATENCY_US_BOUNDS,
                            ev.at.0.saturating_sub(t0) / 1_000,
                        );
                    }
                }
            }
            _ => {}
        }
    }
    // §6.1 optimization hit rates, as percentages of write serves.
    let writes = reg.counter("serve.write");
    if let Some(up) = (reg.counter("copy.upgrades") * 100).checked_div(writes) {
        reg.gauge_set("rate.upgrade_hit_pct", up);
    }
    if let Some(down) = (reg.counter("copy.downgrades") * 100).checked_div(writes) {
        reg.gauge_set("rate.downgrade_hit_pct", down);
    }
    reg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_inclusive_upper_bounds() {
        let mut h = Histogram::new(&[10, 20, 30]);
        h.observe(0);
        h.observe(10); // lands in <=10, not <=20
        h.observe(11);
        h.observe(30);
        h.observe(31); // overflow
        assert_eq!(h.bucket(Some(10)), 2);
        assert_eq!(h.bucket(Some(20)), 1);
        assert_eq!(h.bucket(Some(30)), 1);
        assert_eq!(h.bucket(None), 1);
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 31);
    }

    #[test]
    fn saturation_never_wraps() {
        let mut h = Histogram::new(&[10]);
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
        let mut reg = Registry::new();
        reg.add("c", u64::MAX);
        reg.add("c", 5);
        assert_eq!(reg.counter("c"), u64::MAX);
    }

    #[test]
    fn quantiles_report_bucket_upper_bounds() {
        let mut h = Histogram::new(&[10, 20, 30]);
        for v in [1, 2, 3, 15, 25, 25, 25, 25, 25, 25] {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.30), Some(10));
        assert_eq!(h.quantile(0.40), Some(20));
        assert_eq!(h.quantile(0.95), Some(30));
        h.observe(99);
        assert_eq!(h.quantile(1.0), None);
    }

    #[test]
    fn merge_is_order_independent() {
        // Simulate three workers producing shards of one sweep.
        let shard = |vals: &[u64], counter: u64| {
            let mut r = Registry::new();
            r.add("runs", counter);
            r.gauge_max("peak", vals.iter().copied().max().unwrap_or(0));
            for &v in vals {
                r.observe("lat", &[10, 100, 1000], v);
            }
            r
        };
        let shards = [shard(&[5, 50], 1), shard(&[500, 5], 2), shard(&[9999], 3)];
        let mut fwd = Registry::new();
        for s in &shards {
            fwd.merge(s);
        }
        let mut rev = Registry::new();
        for s in shards.iter().rev() {
            rev.merge(s);
        }
        assert_eq!(fwd, rev);
        assert_eq!(fwd.render(), rev.render());
        assert_eq!(fwd.counter("runs"), 6);
        assert_eq!(fwd.gauge("peak"), 9999);
        assert_eq!(fwd.histogram("lat").unwrap().count(), 5);
    }

    #[test]
    fn empty_registry_renders_empty() {
        assert_eq!(Registry::new().render(), "");
    }
}
