//! A plain-std metrics registry: counters, gauges, and fixed-bucket
//! histograms, with deterministic text rendering and order-independent
//! merging (so per-worker registries from a `--jobs N` sweep combine
//! into the same report regardless of completion order).
//!
//! [`from_trace`] derives the standard protocol metrics — per-kind wire
//! latencies, demand fetch latency, library queue depth, Δ-window stall
//! time, upgrade/downgrade hit rates, retry/fault counters — from a
//! recorded event stream, so any traced run can be summarized without
//! touching the hot path.

use std::collections::BTreeMap;

use crate::event::{
    TraceEvent,
    TraceKind,
};

/// Histogram bucket upper bounds (µs) used for latency metrics.
pub const LATENCY_US_BOUNDS: &[u64] =
    &[50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000];

/// Histogram bucket upper bounds used for queue-depth metrics.
pub const DEPTH_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32, 64];

/// Histogram bucket upper bounds (bytes) for delta-grant payload sizes.
/// 516 is the full-grant payload the delta must undercut to be sent.
pub const DELTA_BYTES_BOUNDS: &[u64] = &[16, 32, 64, 128, 256, 384, 515];

/// A fixed-bucket histogram with saturating totals.
///
/// A value `v` lands in the first bucket whose upper bound satisfies
/// `v <= bound`; values above the last bound land in the overflow
/// bucket. Bounds are fixed at construction, so merging two histograms
/// with the same bounds is a plain element-wise add — commutative and
/// associative, which is what makes multi-worker merges deterministic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Creates a histogram with the given ascending bucket upper bounds.
    pub fn new(bounds: &[u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len()],
            overflow: 0,
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one value.
    pub fn observe(&mut self, v: u64) {
        match self.bounds.iter().position(|&b| v <= b) {
            Some(i) => self.counts[i] = self.counts[i].saturating_add(1),
            None => self.overflow = self.overflow.saturating_add(1),
        }
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of observed values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observed value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Count in the bucket with upper bound `bound` (must be one of the
    /// construction bounds), or the overflow bucket for `None`.
    pub fn bucket(&self, bound: Option<u64>) -> u64 {
        match bound {
            Some(b) => {
                self.bounds.iter().position(|&x| x == b).map(|i| self.counts[i]).unwrap_or(0)
            }
            None => self.overflow,
        }
    }

    /// The `q`-quantile (`0.0..=1.0`), linearly interpolated within the
    /// bucket that contains it: a rank `p` of the bucket's `c`
    /// observations reads `lo + (hi - lo) · p / c` rather than the
    /// bucket's upper bound, so a histogram whose median sits at the
    /// bottom of a wide bucket no longer reports the top of it. Returns
    /// `None` if the quantile falls in the overflow bucket or the
    /// histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 && seen + c >= rank {
                let lo = if i == 0 { 0 } else { self.bounds[i - 1] };
                let hi = self.bounds[i];
                let pos = rank - seen; // 1..=c
                let span = u128::from(hi - lo) * u128::from(pos) / u128::from(c);
                return Some(lo + span as u64);
            }
            seen += c;
        }
        None
    }

    /// Element-wise merge (both sides must share bounds).
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "merging histograms with different bounds");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a = a.saturating_add(*b);
        }
        self.overflow = self.overflow.saturating_add(other.overflow);
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

/// A named collection of counters, gauges, and histograms.
///
/// Names are free-form dotted strings (`msg.sent.page_grant`); the
/// `BTreeMap` storage makes iteration — and therefore [`Registry::render`] —
/// deterministic.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the named counter (created at zero).
    pub fn add(&mut self, name: &str, n: u64) {
        let c = self.counters.entry(name.to_string()).or_insert(0);
        *c = c.saturating_add(n);
    }

    /// Raises the named gauge to at least `v` (high-water mark).
    pub fn gauge_max(&mut self, name: &str, v: u64) {
        let g = self.gauges.entry(name.to_string()).or_insert(0);
        *g = (*g).max(v);
    }

    /// Sets the named gauge to `v` unconditionally.
    pub fn gauge_set(&mut self, name: &str, v: u64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Records `v` in the named histogram (created with `bounds`).
    pub fn observe(&mut self, name: &str, bounds: &[u64], v: u64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(v);
    }

    /// Reads a counter (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Reads a gauge (0 if absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Reads a histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Merges another registry into this one: counters add, gauges take
    /// the max, histograms add bucket-wise. Commutative and
    /// associative, so a `--jobs N` sweep can merge per-worker
    /// registries in any order and render the same report.
    pub fn merge(&mut self, other: &Registry) {
        for (name, n) in &other.counters {
            self.add(name, *n);
        }
        for (name, v) in &other.gauges {
            self.gauge_max(name, *v);
        }
        for (name, h) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(name.clone(), h.clone());
                }
            }
        }
    }

    /// Renders the registry as a stable, human-readable text block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, n) in &self.counters {
                out.push_str(&format!("  {name:<40} {n}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, v) in &self.gauges {
                out.push_str(&format!("  {name:<40} {v}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (name, h) in &self.histograms {
                let avg = h.sum.checked_div(h.count).unwrap_or(0);
                let q = |x: f64| match h.quantile(x) {
                    Some(v) => format!("{v}"),
                    None => format!(">{}", h.bounds.last().copied().unwrap_or(0)),
                };
                out.push_str(&format!(
                    "  {:<40} count={} avg={} p50={} p95={} max={}\n",
                    name,
                    h.count,
                    avg,
                    q(0.50),
                    q(0.95),
                    h.max
                ));
            }
        }
        out
    }
}

/// Derives the standard protocol metrics from a recorded trace.
pub fn from_trace(events: &[TraceEvent]) -> Registry {
    let mut reg = Registry::new();
    // Outstanding remote fetches: (site, subject) -> request time.
    let mut fetches: BTreeMap<(u16, (u16, u32, u32)), u64> = BTreeMap::new();
    let key = |ev: &TraceEvent| {
        ev.subject.map(|(seg, page)| (ev.site.0, (seg.library.0, seg.serial, page.0)))
    };
    for ev in events {
        match ev.kind {
            TraceKind::MsgSent => {
                if let Some(msg) = ev.msg {
                    reg.add(&format!("msg.sent.{}", msg.name()), 1);
                    reg.observe(
                        &format!("wire.latency_us.{}", msg.name()),
                        LATENCY_US_BOUNDS,
                        ev.detail / 1_000,
                    );
                    // Payload bytes on the wire, per message kind:
                    // §7.2's 1024-byte page buffer rides on every full
                    // grant and library handoff; header-only kinds
                    // carry nothing. Delta grants are counted exactly,
                    // from the encoded payload the granter stamps on
                    // `DeltaGrantSent` (below), since `MsgSent` does
                    // not see the encoded form.
                    if matches!(msg.name(), "PageGrant" | "LibraryHandoff" | "TsReadData") {
                        reg.add(&format!("wire.bytes.{}", msg.name()), 1024);
                    }
                }
            }
            TraceKind::RequestSent => {
                reg.add("demand.requests", 1);
                if let Some(k) = key(ev) {
                    fetches.entry(k).or_insert(ev.at.0);
                }
            }
            TraceKind::Installed | TraceKind::Upgraded => {
                reg.add(
                    if ev.kind == TraceKind::Upgraded {
                        "copy.upgrades"
                    } else {
                        "copy.installs"
                    },
                    1,
                );
                if let Some(k) = key(ev) {
                    if let Some(t0) = fetches.remove(&k) {
                        reg.observe(
                            "demand.fetch_latency_us",
                            LATENCY_US_BOUNDS,
                            ev.at.0.saturating_sub(t0) / 1_000,
                        );
                    }
                }
            }
            TraceKind::Downgraded => reg.add("copy.downgrades", 1),
            TraceKind::CopyRelinquished => reg.add("copy.relinquished", 1),
            TraceKind::ReaderInvalidated => reg.add("copy.reader_invalidated", 1),
            TraceKind::RequestQueued => {
                reg.observe("library.queue_depth", DEPTH_BOUNDS, ev.detail);
                reg.gauge_max("library.queue_depth_max", ev.detail);
            }
            TraceKind::ServeStart => {
                reg.add(
                    if ev.access.map(|a| a.is_write()).unwrap_or(false) {
                        "serve.write"
                    } else {
                        "serve.read"
                    },
                    1,
                );
            }
            TraceKind::AddReadersSent => reg.add("serve.add_readers", 1),
            TraceKind::DenySent => {
                reg.add("window.denials", 1);
                reg.observe("window.stall_us", LATENCY_US_BOUNDS, ev.detail / 1_000);
            }
            TraceKind::InvalidateQueued => {
                reg.add("window.queued_delays", 1);
                reg.observe("window.stall_us", LATENCY_US_BOUNDS, ev.detail / 1_000);
            }
            TraceKind::RequestRetry => reg.add("retry.request", 1),
            TraceKind::ServeRetry => reg.add("retry.serve", 1),
            TraceKind::RoundRetry => reg.add("retry.round", 1),
            TraceKind::DoneRetry => reg.add("retry.done", 1),
            TraceKind::GrantRetry => reg.add("retry.grant", ev.detail.max(1)),
            TraceKind::DenyRetry => reg.add("retry.deny_backoff", 1),
            TraceKind::GrantSent => {
                reg.add("grant.sent", 1);
                reg.add("grant.full_sent", 1);
            }
            TraceKind::DeltaGrantSent => {
                reg.add("grant.sent", 1);
                reg.add("grant.delta_sent", 1);
                // `epoch` on this kind is the encoded delta payload in
                // bytes (kind-specific reuse documented on the event).
                reg.add("wire.bytes.PageGrantDelta", u64::from(ev.epoch));
                reg.observe("grant.delta_bytes", DELTA_BYTES_BOUNDS, u64::from(ev.epoch));
            }
            TraceKind::DeltaPatched => reg.add("grant.delta_patched", 1),
            TraceKind::DeltaRejected => reg.add("grant.delta_rejected", 1),
            TraceKind::UpgradeSent => reg.add("grant.upgrades_sent", 1),
            TraceKind::GrantEscalated => reg.add("grant.escalated", 1),
            TraceKind::StaleGrantDropped => reg.add("grant.stale_dropped", 1),
            TraceKind::MsgDropped => reg.add("fault.dropped", 1),
            TraceKind::MsgDelayed => reg.add("fault.delayed", 1),
            TraceKind::MsgDuplicated => reg.add("fault.duplicated", 1),
            TraceKind::MsgHeldBack => reg.add("fault.held_back", 1),
            TraceKind::GapDeclared => reg.add("fault.gaps_declared", 1),
            TraceKind::MsgDupDiscarded => reg.add("fault.dup_discarded", 1),
            TraceKind::MsgStaleDropped => reg.add("fault.stale_dropped", 1),
            TraceKind::SiteCrash => reg.add("fault.crashes", 1),
            TraceKind::SiteRestart => reg.add("fault.restarts", 1),
            // Timestamp-coherence (Tardis) protocol events. The
            // renewal-vs-invalidation story is `ts.renew_grants`
            // against Mirage's `copy.reader_invalidated`: Tardis
            // readers age out of their leases and renew with a
            // header-only exchange instead of being chased.
            TraceKind::TsReadGranted => reg.add("ts.read_grants", 1),
            TraceKind::TsRenewGranted => reg.add("ts.renew_grants", 1),
            TraceKind::TsWriteGranted => {
                reg.add("ts.write_grants", 1);
                // `epoch` flags whether the grant carried page data; an
                // in-place grant is the Tardis analogue of §6.1's
                // upgrade-without-copy. Self-grants never hit the wire.
                if ev.epoch == 0 {
                    reg.add("ts.write_grants_in_place", 1);
                } else if ev.peer != Some(ev.site) {
                    reg.add("wire.bytes.TsWriteGrant", 1024);
                }
            }
            TraceKind::TsRecallSent => reg.add("ts.recalls", 1),
            TraceKind::TsWriteBackSent => {
                reg.add("ts.writebacks", 1);
                // `epoch` flags a dirty write-back carrying page bytes.
                if ev.epoch == 1 && ev.peer != Some(ev.site) {
                    reg.add("wire.bytes.TsWriteBack", 1024);
                }
            }
            TraceKind::TsWriteBackApplied => reg.add("ts.writebacks_applied", 1),
            TraceKind::TsLeaseExpired => reg.add("ts.lease_expiries", 1),
            TraceKind::TsInstalled | TraceKind::TsUpgraded | TraceKind::TsRenewed => {
                reg.add(
                    match ev.kind {
                        TraceKind::TsUpgraded => "ts.upgrades",
                        TraceKind::TsRenewed => "ts.renewals",
                        _ => "ts.installs",
                    },
                    1,
                );
                if let Some(k) = key(ev) {
                    if let Some(t0) = fetches.remove(&k) {
                        reg.observe(
                            "demand.fetch_latency_us",
                            LATENCY_US_BOUNDS,
                            ev.at.0.saturating_sub(t0) / 1_000,
                        );
                    }
                }
            }
            _ => {}
        }
    }
    // §6.1 optimization hit rates, as percentages of write serves.
    let writes = reg.counter("serve.write");
    if let Some(up) = (reg.counter("copy.upgrades") * 100).checked_div(writes) {
        reg.gauge_set("rate.upgrade_hit_pct", up);
    }
    if let Some(down) = (reg.counter("copy.downgrades") * 100).checked_div(writes) {
        reg.gauge_set("rate.downgrade_hit_pct", down);
    }
    reg
}

/// One open-loop request lifecycle, in nanoseconds of simulated time.
///
/// `arrival` is when the traffic generator scheduled the demand,
/// `submit` when a worker dequeued it and issued the access, `grant`
/// when the access completed (fault serviced, value delivered).
/// `depth_at_submit` is how many requests were still waiting behind it
/// when it left the queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct LatencyRecord {
    /// Scheduled arrival time (ns).
    pub arrival_ns: u64,
    /// Dequeue/issue time (ns).
    pub submit_ns: u64,
    /// Completion time (ns).
    pub grant_ns: u64,
    /// Queue depth observed at submit (requests left waiting).
    pub depth_at_submit: u32,
}

impl LatencyRecord {
    /// Queueing wait: arrival → submit.
    pub fn wait_ns(&self) -> u64 {
        self.submit_ns.saturating_sub(self.arrival_ns)
    }

    /// Service time: submit → grant.
    pub fn service_ns(&self) -> u64 {
        self.grant_ns.saturating_sub(self.submit_ns)
    }

    /// Sojourn time: arrival → grant (wait plus service — the latency
    /// an open-loop client observes).
    pub fn sojourn_ns(&self) -> u64 {
        self.grant_ns.saturating_sub(self.arrival_ns)
    }
}

/// Which interval of a [`LatencyRecord`] a query reads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LatencyPhase {
    /// Arrival → submit.
    Wait,
    /// Submit → grant.
    Service,
    /// Arrival → grant.
    Sojourn,
}

/// A multiset of [`LatencyRecord`]s with exact quantiles and CDF output.
///
/// Per-worker sets from a `--jobs N` sweep combine with
/// [`LatencySet::merge`], which canonicalizes the record order, so the
/// merged set — and every quantile, histogram, and CDF read from it —
/// is identical regardless of completion order. Quantiles are exact
/// (nearest-rank over the sorted values), unlike the bucketed
/// [`Histogram`]; use [`LatencySet::histogram_us`] when a fixed-memory
/// mergeable summary is wanted instead of the full record list.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LatencySet {
    records: Vec<LatencyRecord>,
}

impl LatencySet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one record.
    pub fn push(&mut self, r: LatencyRecord) {
        self.records.push(r);
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records have been added.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records, in canonical (sorted) order.
    pub fn records(&self) -> Vec<LatencyRecord> {
        let mut rs = self.records.clone();
        rs.sort_unstable();
        rs
    }

    /// Merges another set into this one and canonicalizes the order:
    /// commutative and associative, like [`Histogram::merge`], so
    /// per-worker sets combine into the same set in any order.
    pub fn merge(&mut self, other: &LatencySet) {
        self.records.extend_from_slice(&other.records);
        self.records.sort_unstable();
    }

    /// The chosen phase of every record, sorted ascending.
    fn sorted_ns(&self, phase: LatencyPhase) -> Vec<u64> {
        let mut vs: Vec<u64> = self
            .records
            .iter()
            .map(|r| match phase {
                LatencyPhase::Wait => r.wait_ns(),
                LatencyPhase::Service => r.service_ns(),
                LatencyPhase::Sojourn => r.sojourn_ns(),
            })
            .collect();
        vs.sort_unstable();
        vs
    }

    /// Exact `q`-quantile (nearest rank) of the chosen phase, in
    /// nanoseconds. `None` on an empty set.
    pub fn quantile_ns(&self, phase: LatencyPhase, q: f64) -> Option<u64> {
        let vs = self.sorted_ns(phase);
        if vs.is_empty() {
            return None;
        }
        let rank = ((q * vs.len() as f64).ceil() as usize).clamp(1, vs.len());
        Some(vs[rank - 1])
    }

    /// Mean of the chosen phase in nanoseconds (0 on an empty set).
    pub fn mean_ns(&self, phase: LatencyPhase) -> u64 {
        if self.records.is_empty() {
            return 0;
        }
        let sum: u128 = self.sorted_ns(phase).iter().map(|&v| u128::from(v)).sum();
        (sum / self.records.len() as u128) as u64
    }

    /// Largest value of the chosen phase in nanoseconds (0 if empty).
    pub fn max_ns(&self, phase: LatencyPhase) -> u64 {
        self.sorted_ns(phase).last().copied().unwrap_or(0)
    }

    /// Largest queue depth any record observed at submit.
    pub fn max_depth(&self) -> u32 {
        self.records.iter().map(|r| r.depth_at_submit).max().unwrap_or(0)
    }

    /// Buckets the chosen phase (in µs) into a [`Histogram`] — the
    /// fixed-memory, mergeable summary of this set.
    pub fn histogram_us(&self, phase: LatencyPhase, bounds: &[u64]) -> Histogram {
        let mut h = Histogram::new(bounds);
        for v in self.sorted_ns(phase) {
            h.observe(v / 1_000);
        }
        h
    }

    /// The empirical CDF of the chosen phase: `(value_ns, cumulative
    /// count)` at each distinct value, ascending. Counts (not
    /// fractions) keep the points exact integers.
    pub fn cdf_points(&self, phase: LatencyPhase) -> Vec<(u64, u64)> {
        let vs = self.sorted_ns(phase);
        let mut points: Vec<(u64, u64)> = Vec::new();
        for (i, v) in vs.iter().enumerate() {
            match points.last_mut() {
                Some(last) if last.0 == *v => last.1 = (i + 1) as u64,
                _ => points.push((*v, (i + 1) as u64)),
            }
        }
        points
    }

    /// The CDF as a stable text table (µs vs cumulative fraction).
    pub fn cdf_text(&self, phase: LatencyPhase) -> String {
        let n = self.records.len();
        let mut out = String::new();
        for (v, c) in self.cdf_points(phase) {
            out.push_str(&format!(
                "  {:>12.3} us  {:.6}\n",
                v as f64 / 1_000.0,
                c as f64 / n as f64
            ));
        }
        out
    }

    /// The CDF as a single-line JSON object:
    /// `{"count":N,"points_ns":[[value,cum_count],...]}`.
    pub fn cdf_json(&self, phase: LatencyPhase) -> String {
        let points: Vec<String> =
            self.cdf_points(phase).iter().map(|(v, c)| format!("[{v},{c}]")).collect();
        format!("{{\"count\":{},\"points_ns\":[{}]}}", self.records.len(), points.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_inclusive_upper_bounds() {
        let mut h = Histogram::new(&[10, 20, 30]);
        h.observe(0);
        h.observe(10); // lands in <=10, not <=20
        h.observe(11);
        h.observe(30);
        h.observe(31); // overflow
        assert_eq!(h.bucket(Some(10)), 2);
        assert_eq!(h.bucket(Some(20)), 1);
        assert_eq!(h.bucket(Some(30)), 1);
        assert_eq!(h.bucket(None), 1);
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 31);
    }

    #[test]
    fn saturation_never_wraps() {
        let mut h = Histogram::new(&[10]);
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
        let mut reg = Registry::new();
        reg.add("c", u64::MAX);
        reg.add("c", 5);
        assert_eq!(reg.counter("c"), u64::MAX);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let mut h = Histogram::new(&[10, 20, 30]);
        for v in [1, 2, 3, 15, 25, 25, 25, 25, 25, 25] {
            h.observe(v);
        }
        // Rank 1 of 3 in (0, 10]: a third of the way up, not the top.
        assert_eq!(h.quantile(0.10), Some(3));
        // Rank 3 of 3 lands exactly on the bucket's upper bound.
        assert_eq!(h.quantile(0.30), Some(10));
        // Sole occupant of (10, 20]: its top.
        assert_eq!(h.quantile(0.40), Some(20));
        // Rank 1 of 6 in (20, 30]: 20 + 10·1/6.
        assert_eq!(h.quantile(0.50), Some(21));
        assert_eq!(h.quantile(0.95), Some(30));
        h.observe(99);
        assert_eq!(h.quantile(1.0), None);
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let mut h = Histogram::new(&[10, 100, 1_000, 10_000]);
        let mut x = 7u64;
        for _ in 0..500 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            h.observe(x % 9_000);
        }
        let qs: Vec<u64> = (1..=100).map(|i| h.quantile(i as f64 / 100.0).unwrap()).collect();
        assert!(qs.windows(2).all(|w| w[0] <= w[1]), "quantiles must not decrease: {qs:?}");
    }

    fn rec(arrival: u64, submit: u64, grant: u64, depth: u32) -> LatencyRecord {
        LatencyRecord {
            arrival_ns: arrival,
            submit_ns: submit,
            grant_ns: grant,
            depth_at_submit: depth,
        }
    }

    #[test]
    fn latency_set_merge_is_order_independent() {
        // Three "workers" each complete a disjoint slice of requests.
        let shard = |base: u64, n: u64| {
            let mut s = LatencySet::new();
            for i in 0..n {
                let a = base + i * 1_000;
                s.push(rec(a, a + 37 * (i + 1), a + 37 * (i + 1) + 9_001, i as u32));
            }
            s
        };
        let shards = [shard(0, 5), shard(100_000, 3), shard(7, 8)];
        let mut fwd = LatencySet::new();
        for s in &shards {
            fwd.merge(s);
        }
        let mut rev = LatencySet::new();
        for s in shards.iter().rev() {
            rev.merge(s);
        }
        assert_eq!(fwd, rev);
        assert_eq!(fwd.cdf_json(LatencyPhase::Service), rev.cdf_json(LatencyPhase::Service));
        assert_eq!(
            fwd.histogram_us(LatencyPhase::Sojourn, LATENCY_US_BOUNDS),
            rev.histogram_us(LatencyPhase::Sojourn, LATENCY_US_BOUNDS)
        );
        assert_eq!(fwd.len(), 16);
    }

    #[test]
    fn latency_set_quantiles_are_exact_and_monotone() {
        let mut s = LatencySet::new();
        for i in 0..100u64 {
            // Service times 1..=100 µs; submit = arrival (no queueing).
            s.push(rec(i, i, i + (i + 1) * 1_000, 0));
        }
        assert_eq!(s.quantile_ns(LatencyPhase::Service, 0.01), Some(1_000));
        assert_eq!(s.quantile_ns(LatencyPhase::Service, 0.50), Some(50_000));
        assert_eq!(s.quantile_ns(LatencyPhase::Service, 0.99), Some(99_000));
        assert_eq!(s.quantile_ns(LatencyPhase::Service, 1.0), Some(100_000));
        let qs: Vec<u64> = (1..=100)
            .map(|i| s.quantile_ns(LatencyPhase::Sojourn, i as f64 / 100.0).unwrap())
            .collect();
        assert!(qs.windows(2).all(|w| w[0] <= w[1]));
        // Wait is zero throughout; sojourn == service.
        assert_eq!(s.quantile_ns(LatencyPhase::Wait, 0.99), Some(0));
        assert_eq!(s.max_ns(LatencyPhase::Sojourn), s.max_ns(LatencyPhase::Service));
    }

    #[test]
    fn latency_set_empty_and_saturated_edges() {
        let empty = LatencySet::new();
        assert!(empty.is_empty());
        assert_eq!(empty.quantile_ns(LatencyPhase::Service, 0.5), None);
        assert_eq!(empty.mean_ns(LatencyPhase::Service), 0);
        assert_eq!(empty.max_depth(), 0);
        assert_eq!(empty.cdf_points(LatencyPhase::Service), vec![]);
        assert_eq!(empty.cdf_json(LatencyPhase::Service), r#"{"count":0,"points_ns":[]}"#);

        // A saturated run: every record stuck behind an ever-growing
        // queue; clamped arithmetic must not wrap even at u64::MAX.
        let mut sat = LatencySet::new();
        sat.push(rec(u64::MAX, 0, u64::MAX, u32::MAX)); // submit < arrival: wait clamps to 0
        sat.push(rec(0, u64::MAX, u64::MAX, u32::MAX));
        assert_eq!(sat.quantile_ns(LatencyPhase::Wait, 1.0), Some(u64::MAX));
        assert_eq!(sat.max_depth(), u32::MAX);
        let h = sat.histogram_us(LatencyPhase::Sojourn, LATENCY_US_BOUNDS);
        assert_eq!(h.count(), 2);
        assert_eq!(h.bucket(None), 1); // u64::MAX sojourn overflows the bounds
    }

    #[test]
    fn latency_cdf_collapses_duplicate_values() {
        let mut s = LatencySet::new();
        for _ in 0..3 {
            s.push(rec(0, 0, 5_000, 0));
        }
        s.push(rec(0, 0, 9_000, 1));
        assert_eq!(s.cdf_points(LatencyPhase::Service), vec![(5_000, 3), (9_000, 4)]);
        assert_eq!(
            s.cdf_json(LatencyPhase::Service),
            r#"{"count":4,"points_ns":[[5000,3],[9000,4]]}"#
        );
        let text = s.cdf_text(LatencyPhase::Service);
        assert!(text.contains("5.000 us  0.750000"), "{text}");
        assert!(text.contains("9.000 us  1.000000"), "{text}");
    }

    #[test]
    fn merge_is_order_independent() {
        // Simulate three workers producing shards of one sweep.
        let shard = |vals: &[u64], counter: u64| {
            let mut r = Registry::new();
            r.add("runs", counter);
            r.gauge_max("peak", vals.iter().copied().max().unwrap_or(0));
            for &v in vals {
                r.observe("lat", &[10, 100, 1000], v);
            }
            r
        };
        let shards = [shard(&[5, 50], 1), shard(&[500, 5], 2), shard(&[9999], 3)];
        let mut fwd = Registry::new();
        for s in &shards {
            fwd.merge(s);
        }
        let mut rev = Registry::new();
        for s in shards.iter().rev() {
            rev.merge(s);
        }
        assert_eq!(fwd, rev);
        assert_eq!(fwd.render(), rev.render());
        assert_eq!(fwd.counter("runs"), 6);
        assert_eq!(fwd.gauge("peak"), 9999);
        assert_eq!(fwd.histogram("lat").unwrap().count(), 5);
    }

    #[test]
    fn empty_registry_renders_empty() {
        assert_eq!(Registry::new().render(), "");
    }
}
