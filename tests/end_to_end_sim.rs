//! End-to-end simulator runs: real programs, real protocol, verified
//! data values and quiescent coherence.

use mirage::protocol::{
    DeltaPolicy,
    PageStore,
    ProtocolConfig,
};
use mirage::sim::{
    MemRef,
    Op,
    Program,
    SimConfig,
    World,
};
use mirage::types::{
    Delta,
    PageNum,
    PageProt,
    SegmentId,
    SimTime,
};
use mirage::workloads::{
    Decrementer,
    PingPongPinger,
    PingPongPonger,
};

fn cfg(delta: u32) -> SimConfig {
    SimConfig {
        protocol: ProtocolConfig {
            delta: DeltaPolicy::Uniform(Delta(delta)),
            ..Default::default()
        },
        ..Default::default()
    }
}

/// A writer program that stamps a sequence of words, then exits.
struct Stamper {
    seg: SegmentId,
    count: u32,
    next: u32,
}
impl Program for Stamper {
    fn step(&mut self, _v: Option<u32>) -> Op {
        if self.next >= self.count {
            return Op::Exit;
        }
        let i = self.next;
        self.next += 1;
        Op::Write(MemRef::new(self.seg, PageNum(i / 64), ((i % 64) * 8) as usize), 7000 + i)
    }
    fn metric(&self) -> u64 {
        u64::from(self.next)
    }
}

/// A checker that reads the same words and records mismatches.
struct Checker {
    seg: SegmentId,
    count: u32,
    next: u32,
    reading: bool,
    mismatches: u64,
}
impl Program for Checker {
    fn step(&mut self, last: Option<u32>) -> Op {
        if self.reading {
            self.reading = false;
            let i = self.next;
            if last != Some(7000 + i) {
                self.mismatches += 1;
            }
            self.next += 1;
        }
        if self.next >= self.count {
            return Op::Exit;
        }
        self.reading = true;
        let i = self.next;
        Op::Read(MemRef::new(self.seg, PageNum(i / 64), ((i % 64) * 8) as usize))
    }
    fn metric(&self) -> u64 {
        self.mismatches
    }
}

#[test]
fn producer_then_consumer_sees_every_value() {
    let mut w = World::new(2, cfg(0));
    let seg = w.create_segment(0, 4);
    w.spawn(0, Box::new(Stamper { seg, count: 256, next: 0 }), 4);
    assert!(w.run_to_completion(SimTime::from_millis(60_000)));
    // Now the consumer reads all 256 words from the other site.
    w.spawn(
        1,
        Box::new(Checker { seg, count: 256, next: 0, reading: false, mismatches: 0 }),
        4,
    );
    assert!(w.run_to_completion(SimTime::from_millis(120_000)));
    assert_eq!(w.sites[1].procs[0].metric(), 0, "no stale values observed");
}

#[test]
fn decrementers_fully_consume_their_counters() {
    for delta in [0u32, 6, 60] {
        let mut w = World::new(2, cfg(delta));
        let seg = w.create_segment(0, 1);
        w.spawn(0, Box::new(Decrementer::new(seg, 0, 20_000)), 1);
        w.spawn(1, Box::new(Decrementer::new(seg, 128, 20_000)), 1);
        assert!(
            w.run_to_completion(SimTime::from_millis(300_000)),
            "Δ={delta}: did not finish"
        );
        // Both counters reached exactly zero: every decrement was
        // applied to the latest value (no lost updates).
        assert_eq!(w.sites[0].procs[0].metric(), 20_000, "Δ={delta}");
        assert_eq!(w.sites[1].procs[0].metric(), 20_000, "Δ={delta}");
        // Quiescent coherence: the final copies agree byte-for-byte.
        let holders: Vec<_> = (0..2)
            .filter(|&s| w.sites[s].store.prot(seg, PageNum(0)) != PageProt::None)
            .collect();
        assert!(!holders.is_empty(), "Δ={delta}: page lost");
    }
}

#[test]
fn three_site_pingpong_with_spectator_reader() {
    // A third site occasionally reads the thrashed page; coherence and
    // progress must survive the extra read demands.
    use mirage::workloads::Rereader;
    let mut w = World::new(3, cfg(2));
    let seg = w.create_segment(0, 1);
    w.spawn(0, Box::new(PingPongPinger::new(seg, 50, true)), 1);
    w.spawn(1, Box::new(PingPongPonger::new(seg, true)), 1);
    w.spawn(
        2,
        Box::new(Rereader::new(seg, 30, mirage::types::SimDuration::from_millis(250))),
        1,
    );
    assert!(w.run_to_completion(SimTime::from_millis(300_000)));
    assert_eq!(w.sites[0].procs[0].metric(), 50, "all cycles completed");
    assert_eq!(w.sites[2].procs[0].metric(), 30, "spectator finished its reads");
}

#[test]
fn simulation_is_deterministic() {
    let run = || {
        let mut w = World::new(2, cfg(2));
        let seg = w.create_segment(0, 1);
        w.spawn(0, Box::new(PingPongPinger::new(seg, 10_000, true)), 1);
        w.spawn(1, Box::new(PingPongPonger::new(seg, true)), 1);
        w.run_until(SimTime::from_millis(20_000));
        (w.site_metric(0), w.site_metric(1), w.instr.msgs.total(), w.instr.denials, w.now())
    };
    assert_eq!(run(), run(), "same inputs must give identical trajectories");
}

#[test]
fn reference_log_matches_fault_traffic() {
    let mut w = World::new(2, cfg(0));
    w.enable_ref_log();
    let seg = w.create_segment(0, 1);
    w.spawn(0, Box::new(PingPongPinger::new(seg, 25, true)), 1);
    w.spawn(1, Box::new(PingPongPonger::new(seg, true)), 1);
    assert!(w.run_to_completion(SimTime::from_millis(120_000)));
    // Every request the library served appears in the §9 log.
    let total_requests =
        w.instr.msgs.count(mirage_net::MsgKind::PageRequest) + w.instr.local_faults;
    assert!(w.ref_log.len() as u64 >= total_requests, "log misses requests");
    assert!(w.ref_log.iter().all(|e| e.seg == seg));
}

#[test]
fn n_site_token_ring_completes_laps() {
    // The paper's "N-site version" of the worst case: one page visits
    // every site per lap; values must never be lost or reordered.
    use mirage::workloads::RingMember;
    for n in [3usize, 5] {
        let mut w = World::new(n, cfg(0));
        let seg = w.create_segment(0, 1);
        for i in 0..n {
            w.spawn(i, Box::new(RingMember::new(seg, i as u32, n as u32, 10, true)), 1);
        }
        assert!(w.run_to_completion(SimTime::from_millis(600_000)), "{n}-site ring stalled");
        for s in 0..n {
            assert_eq!(w.sites[s].procs[0].metric(), 10, "site {s} of {n}");
        }
    }
}
