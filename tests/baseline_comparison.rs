//! Cross-protocol comparisons: Mirage's optimizations must show up as
//! measurable message savings against the Li–Hudak baselines on the
//! same traces.

use mirage::baseline::{
    AccessTrace,
    DsmProtocol,
    LiCentral,
    LiDistributed,
    MirageCost,
};
use mirage::net::NetCosts;
use mirage::protocol::ProtocolConfig;
use mirage::types::SiteId;

fn protocols(sites: usize) -> (MirageCost, LiCentral, LiDistributed) {
    let costs = NetCosts::vax_locus();
    (
        MirageCost::new(sites, 4, ProtocolConfig::default(), costs.clone()),
        LiCentral::new(SiteId(0), costs.clone()),
        LiDistributed::new(sites, SiteId(0), costs),
    )
}

#[test]
fn mirage_sends_fewer_page_copies_on_upgrade_heavy_traces() {
    // Ping-pong is upgrade-heavy: each site reads then writes. Mirage's
    // optimization 1 turns half the page transfers into notifications.
    let trace = AccessTrace::ping_pong(200);
    let (mut m, mut lc, mut ld) = protocols(2);
    let rm = m.replay(&trace);
    let rc = lc.replay(&trace);
    let rd = ld.replay(&trace);
    assert!(
        rm.larges < rc.larges,
        "mirage {} vs li-central {} page messages",
        rm.larges,
        rc.larges
    );
    assert!(
        rm.larges < rd.larges,
        "mirage {} vs li-distributed {} page messages",
        rm.larges,
        rd.larges
    );
}

#[test]
fn all_protocols_satisfy_every_access() {
    // Replay must terminate with every access granted (the adapters
    // debug-assert grant-at-quiescence internally).
    let trace = AccessTrace::mixed(4, 4, 3_000, 99);
    let (mut m, mut lc, mut ld) = protocols(4);
    let rm = m.replay(&trace);
    let rc = lc.replay(&trace);
    let rd = ld.replay(&trace);
    for r in [&rm, &rc, &rd] {
        assert!(r.faults > 0);
        assert!(r.total_msgs() > 0);
    }
}

#[test]
fn read_mostly_traces_favor_batching_and_shared_copies() {
    let trace = AccessTrace::read_mostly(4, 50, 10);
    let (mut m, mut lc, _) = protocols(5);
    let rm = m.replay(&trace);
    let rc = lc.replay(&trace);
    // Both protocols replicate read copies; neither should ship a page
    // per read.
    let reads = trace.ops.len() as u64;
    assert!(rm.larges < reads / 2);
    assert!(rc.larges < reads / 2);
}

#[test]
fn distributed_manager_forwarding_stays_amortized() {
    let trace = AccessTrace::mixed(6, 2, 5_000, 3);
    let costs = NetCosts::vax_locus();
    let mut ld = LiDistributed::new(6, SiteId(0), costs);
    let r = ld.replay(&trace);
    // probOwner collapsing keeps average chain length small: forwarding
    // hops stay well under 2 per fault.
    assert!(
        (ld.forward_hops as f64) < 2.0 * r.faults as f64,
        "hops {} faults {}",
        ld.forward_hops,
        r.faults
    );
}
