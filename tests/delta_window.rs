//! The time window Δ across the full stack: denial/retry timing in the
//! simulator, dynamic per-page windows, and the queued-invalidation
//! optimization.

use mirage::protocol::{
    DeltaPolicy,
    ProtocolConfig,
};
use mirage::sim::{
    SimConfig,
    World,
};
use mirage::types::{
    Delta,
    SimTime,
};
use mirage::workloads::Decrementer;

fn world(protocol: ProtocolConfig) -> (World, mirage::types::SegmentId) {
    let mut w = World::new(2, SimConfig { protocol, ..Default::default() });
    let seg = w.create_segment(0, 2);
    (w, seg)
}

/// Completion time of the two-decrementer duel, for comparing Δ values.
fn duel_makespan(protocol: ProtocolConfig, task: u32) -> (f64, u64) {
    let (mut w, seg) = world(protocol);
    w.spawn(0, Box::new(Decrementer::new(seg, 0, task)), 2);
    w.spawn(1, Box::new(Decrementer::new(seg, 128, task)), 2);
    assert!(w.run_to_completion(SimTime::from_millis(900_000)));
    (w.now().as_secs_f64(), w.instr.denials)
}

#[test]
fn denials_occur_only_with_nonzero_delta() {
    // Tasks must span several windows so the clock site lands at the
    // remote (non-library) site, where denials cross the wire and are
    // counted by the instrumentation.
    let (_, d0) = duel_makespan(ProtocolConfig::paper(Delta::ZERO), 50_000);
    let (_, d6) = duel_makespan(ProtocolConfig::paper(Delta(6)), 50_000);
    assert_eq!(d0, 0, "Δ=0 never denies");
    assert!(d6 > 0, "Δ=6 must deny early steals");
}

#[test]
fn excessive_delta_causes_retention_delay() {
    // Task ≈ 0.87 s of solo work; windows of 10 s force the loser to
    // wait out idle possession — the retention side of Figure 8.
    let (fair, _) = duel_makespan(ProtocolConfig::paper(Delta(12)), 50_000);
    let (hoarded, _) = duel_makespan(ProtocolConfig::paper(Delta(600)), 50_000);
    assert!(
        hoarded > fair + 5.0,
        "Δ=600 should add idle retention: fair={fair:.2}s hoarded={hoarded:.2}s"
    );
}

#[test]
fn per_page_windows_tune_pages_independently() {
    // Page 0 carries the contended counters with Δ=0; page 1 gets a
    // huge window. Contention on page 0 must not inherit page 1's Δ.
    let protocol = ProtocolConfig {
        delta: DeltaPolicy::PerPage {
            windows: vec![Delta::ZERO, Delta(600)],
            fallback: Delta::ZERO,
        },
        ..Default::default()
    };
    let (mut w, seg) = world(protocol);
    w.spawn(0, Box::new(Decrementer::new(seg, 0, 5_000)), 2);
    w.spawn(1, Box::new(Decrementer::new(seg, 128, 5_000)), 2);
    assert!(w.run_to_completion(SimTime::from_millis(300_000)));
    assert_eq!(w.instr.denials, 0, "page 0 has Δ=0: no denials expected");
}

#[test]
fn queued_invalidation_reduces_denials() {
    let base = ProtocolConfig::paper(Delta(1));
    let queued = ProtocolConfig { queued_invalidation: true, ..base.clone() };
    let (_, plain_denials) = duel_makespan(base, 20_000);
    let (_, queued_denials) = duel_makespan(queued, 20_000);
    // Δ=1 tick ≈ 16.7 ms < the 12.9 ms retry threshold for most of the
    // window, so queued mode converts most denials into delays.
    assert!(
        queued_denials < plain_denials,
        "queued invalidation should suppress denials: {queued_denials} vs {plain_denials}"
    );
}

#[test]
fn delta_zero_and_huge_delta_both_preserve_counts() {
    for delta in [0u32, 1200] {
        let (mut w, seg) = world(ProtocolConfig::paper(Delta(delta)));
        w.spawn(0, Box::new(Decrementer::new(seg, 0, 3_000)), 2);
        w.spawn(1, Box::new(Decrementer::new(seg, 128, 3_000)), 2);
        assert!(w.run_to_completion(SimTime::from_millis(900_000)), "Δ={delta}");
        assert_eq!(w.sites[0].procs[0].metric(), 3_000);
        assert_eq!(w.sites[1].procs[0].metric(), 3_000);
    }
}
