//! Host-runtime integration through the facade crate: real faults, the
//! H1 experiment of `DESIGN.md`.

use mirage::host::HostCluster;
use mirage::protocol::ProtocolConfig;
use mirage::types::{
    Delta,
    PageNum,
};

#[test]
fn host_and_sim_agree_on_protocol_outcomes() {
    // The same logical exchange on both substrates: writer at site 0,
    // upgrade at site 1. The host's end state must match what the
    // synchronous protocol predicts (site 1 sole writer).
    let cluster = HostCluster::start(2, ProtocolConfig::default());
    let seg = cluster.create_segment(0, 1);
    let v0 = cluster.view(0, seg);
    let v1 = cluster.view(1, seg);
    let t = std::thread::spawn(move || {
        v0.write_u32(PageNum(0), 0, 11);
    });
    t.join().unwrap();
    let t = std::thread::spawn(move || {
        assert_eq!(v1.read_u32(PageNum(0), 0), 11);
        v1.write_u32(PageNum(0), 0, 22); // upgrade in place
        v1.read_u32(PageNum(0), 0)
    });
    assert_eq!(t.join().unwrap(), 22);
    let v0b = cluster.view(0, seg);
    let t = std::thread::spawn(move || v0b.read_u32(PageNum(0), 0));
    assert_eq!(t.join().unwrap(), 22);
}

#[test]
fn sequential_counter_relay_over_real_faults() {
    // Sites increment a shared counter in strict turns, 2 sites × 50
    // turns; the counter must end exactly at 100 (every write built on
    // the latest value).
    let cluster = HostCluster::start(2, ProtocolConfig::default());
    let seg = cluster.create_segment(0, 1);
    let a = cluster.view(0, seg);
    let b = cluster.view(1, seg);
    let t1 = std::thread::spawn(move || {
        // Turn-taking via the counter parity itself.
        loop {
            let v = a.read_u32(PageNum(0), 0);
            if v >= 100 {
                break;
            }
            if v.is_multiple_of(2) {
                a.write_u32(PageNum(0), 0, v + 1);
            }
            std::thread::yield_now();
        }
    });
    let t2 = std::thread::spawn(move || loop {
        let v = b.read_u32(PageNum(0), 0);
        if v >= 100 {
            break;
        }
        if v % 2 == 1 {
            b.write_u32(PageNum(0), 0, v + 1);
        }
        std::thread::yield_now();
    });
    t1.join().unwrap();
    t2.join().unwrap();
    let check = cluster.view(0, seg);
    let t = std::thread::spawn(move || check.read_u32(PageNum(0), 0));
    assert_eq!(t.join().unwrap(), 100);
}

#[test]
fn nonzero_delta_cluster_remains_correct() {
    let cluster = HostCluster::start(2, ProtocolConfig::paper(Delta(3)));
    let seg = cluster.create_segment(0, 1);
    let a = cluster.view(0, seg);
    let b = cluster.view(1, seg);
    let t1 = std::thread::spawn(move || {
        for i in 0..10u32 {
            a.write_u32(PageNum(0), 0, i);
        }
    });
    t1.join().unwrap();
    let t2 = std::thread::spawn(move || b.read_u32(PageNum(0), 0));
    assert_eq!(t2.join().unwrap(), 9);
}
