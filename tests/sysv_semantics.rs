//! System V shared-memory semantics across the `mirage-mem` substrate:
//! the §2.2 contract (create by key, attach anywhere, last detach
//! destroys) composed end to end.

use mirage::mem::{
    AddressSpace,
    MasterTable,
    Namespace,
    ProcessTable,
    ShmFlags,
};
use mirage::types::{
    Access,
    MirageError,
    PageNum,
    PageProt,
    Pid,
    SegKey,
    SiteId,
    PAGE_SIZE,
};

#[test]
fn full_segment_lifecycle() {
    let mut ns = Namespace::new(SiteId(0));
    let creator = Pid::new(SiteId(0), 1);
    let other = Pid::new(SiteId(1), 1);

    // shmget(IPC_CREAT): create a 3-page segment.
    let id = ns.get(SegKey(0x5ee), 3 * PAGE_SIZE, ShmFlags::create_rw(), creator).unwrap();

    // Both processes attach — at *different* virtual addresses (§2.2:
    // "processes can share locations at different virtual address
    // ranges").
    ns.attach(id, creator, Access::Write).unwrap();
    ns.attach(id, other, Access::Read).unwrap();
    let mut as1 = AddressSpace::new();
    let mut as2 = AddressSpace::new();
    let a1 = as1.attach_first_fit(id, 3 * PAGE_SIZE, false).unwrap();
    let a2 = as2
        .attach_at(id, 3 * PAGE_SIZE, mirage::mem::addr::SHM_BASE + 64 * PAGE_SIZE, true)
        .unwrap();
    assert_ne!(a1.base, a2.base);

    // The same logical location resolves identically from both.
    let r1 = as1.resolve(a1.base + PAGE_SIZE + 40).unwrap();
    let r2 = as2.resolve(a2.base + PAGE_SIZE + 40).unwrap();
    assert_eq!((r1.segment, r1.page, r1.offset), (r2.segment, r2.page, r2.offset));
    assert_eq!(r1.page, PageNum(1));

    // Detach order: the namespace destroys on the LAST detach only.
    as1.detach(id).unwrap();
    assert!(!ns.detach(id, creator).unwrap());
    assert!(ns.info(id).is_some());
    as2.detach(id).unwrap();
    assert!(ns.detach(id, other).unwrap(), "last detach destroys");
    assert!(ns.info(id).is_none());

    // The key is free for reuse afterwards.
    let id2 = ns.get(SegKey(0x5ee), PAGE_SIZE, ShmFlags::create_rw(), creator).unwrap();
    assert_ne!(id, id2);
}

#[test]
fn lazy_remap_keeps_process_tables_consistent() {
    // The §6.2 lazy method: master changes are invisible to a process
    // until it is next scheduled (remapped).
    let seg = mirage::types::SegmentId::new(SiteId(0), 9);
    let mut master = MasterTable::new(seg, 4);
    let mut pt = ProcessTable::new();
    pt.attach(&master);

    // Network server invalidates page 2 in the master.
    master.set_prot(PageNum(2), PageProt::None);
    master.set_prot(PageNum(0), PageProt::Read);
    // Process still sees its stale view.
    assert_eq!(pt.prot(seg, PageNum(0)), Some(PageProt::None));
    // Context switch: remap all shared pages with the measured cost.
    let (pages, cost) = mirage::mem::remap_process(
        &mut pt,
        core::iter::once(&master),
        mirage::types::SimDuration::from_micros(110),
    );
    assert_eq!(pages, 4, "the prototype remaps ALL pages");
    assert_eq!(cost, mirage::types::SimDuration::from_micros(440));
    assert_eq!(pt.prot(seg, PageNum(0)), Some(PageProt::Read));
    assert_eq!(pt.prot(seg, PageNum(2)), Some(PageProt::None));
}

#[test]
fn permission_model_matches_unix_file_style() {
    let mut ns = Namespace::new(SiteId(0));
    let owner = Pid::new(SiteId(0), 1);
    let stranger = Pid::new(SiteId(2), 5);
    let flags = ShmFlags {
        create: true,
        exclusive: true,
        owner_read: true,
        owner_write: true,
        other_read: true,
        other_write: false,
    };
    let id = ns.get(SegKey(1), PAGE_SIZE, flags, owner).unwrap();
    assert!(ns.attach(id, stranger, Access::Read).is_ok());
    assert_eq!(
        ns.attach(id, stranger, Access::Write).err(),
        Some(MirageError::PermissionDenied(id))
    );
}
