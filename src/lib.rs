//! Mirage: a coherent distributed shared memory design — facade crate.
//!
//! Re-exports the public API of the workspace crates. See the README for a
//! tour and `DESIGN.md` for the system inventory.

pub use mirage_baseline as baseline;
pub use mirage_core as protocol;
pub use mirage_host as host;
pub use mirage_mem as mem;
pub use mirage_net as net;
pub use mirage_sim as sim;
pub use mirage_trace as trace;
pub use mirage_types as types;
pub use mirage_workloads as workloads;
